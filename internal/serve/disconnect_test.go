package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// Client-disconnect cancellation at the server layer: dropping the HTTP
// connection mid-query must cancel the running statement through the
// engine's relational.CancelToken path, release the query's announced
// gang slot on the fabric's admission barrier, and leave the engine
// healthy for the next query. These run over real TCP (httptest.Server)
// so the request context is cancelled the way production disconnects
// cancel it.

// postSQL submits one statement over TCP with the given context.
func postSQL(ctx context.Context, cl *http.Client, base, key, q string) (int, *QueryResponse, error) {
	body, _ := json.Marshal(QueryRequest{SQL: q})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sql", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("X-API-Key", key)
	resp, err := cl.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		return resp.StatusCode, nil, fmt.Errorf("%s: %s", resp.Status, data)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, &qr, nil
}

// TestDisconnectWithdrawsGangSlot is the deterministic disconnect test:
// a query holding a gang slot parks at the admission barrier (floor 2,
// one party), its client disconnects, and the server must both cancel
// the query and withdraw the slot — proven by a follow-up query that
// claims the remaining announced slot and completes instead of waiting
// forever for the dead query.
func TestDisconnectWithdrawsGangSlot(t *testing.T) {
	srv := testServer(t, 2000)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	baseline := runtime.NumGoroutine()

	if code := do(t, srv.Handler(), "POST", "/v1/gang", "gold-key", GangRequest{Announce: 2}, nil); code != http.StatusOK {
		t.Fatalf("gang announce: %d", code)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := postSQL(ctx, cl, ts.URL, "gold-key", testQuery)
		errc <- err
	}()
	waitInflight(t, srv, 1)
	time.Sleep(200 * time.Millisecond) // let it park at the barrier
	select {
	case err := <-errc:
		t.Fatalf("query finished despite gang floor: %v", err)
	default:
	}

	cancel() // client goes away mid-query
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disconnect did not cancel the in-flight query")
	}
	waitInflight(t, srv, 0)

	// The dead query's gang slot must be back on the barrier's books:
	// this query claims the second announced slot and, because the floor
	// was lowered by the withdrawal, runs alone to completion.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	code, resp, err := postSQL(ctx2, cl, ts.URL, "gold-key", testQuery)
	if err != nil || code != http.StatusOK {
		t.Fatalf("follow-up query after disconnect: code %d, err %v (gang slot not withdrawn?)", code, err)
	}
	if resp.Result.RowCount == 0 {
		t.Fatal("follow-up query returned no rows")
	}

	// The disconnect was counted as a tenant error, not a served query.
	m := srv.MetricsSnapshot()
	if g := m.Tenants["gold"]; g.Errors != 1 || g.Queries != 1 {
		t.Fatalf("gold counters after disconnect = %+v (want 1 error, 1 query)", g)
	}

	cl.CloseIdleConnections()
	settleGoroutines(t, "disconnect-gang", baseline)
}

// TestDisconnectMidQueryHTTP mirrors the sql package's mid-flight
// cancellation tests at the server layer: the client disconnects
// shortly after submitting a heavy statement, the server must abort it
// promptly, and a follow-up on the same server runs clean. If a run
// completes before the disconnect lands, the table grows and the run
// retries (fast-machine guard).
func TestDisconnectMidQueryHTTP(t *testing.T) {
	const heavy = "SELECT region, SUM(price * (1 - discount) * quantity) AS v FROM sales WHERE quantity * 3 > 2 GROUP BY region"
	cl := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	baseline := runtime.NumGoroutine()
	rows := 200_000
	for attempt := 0; attempt < 5; attempt++ {
		srv := testServer(t, rows)
		ts := httptest.NewServer(srv.Handler())

		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(2*time.Millisecond, cancel)
		started := time.Now()
		code, _, err := postSQL(ctx, cl, ts.URL, "bronze-key", heavy)
		elapsed := time.Since(started)
		timer.Stop()
		cancel()
		if err == nil && code == http.StatusOK {
			// Completed before the disconnect fired: grow and retry.
			ts.Close()
			rows *= 2
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client error = %v, want context.Canceled", err)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("server held the connection %v after disconnect", elapsed)
		}
		waitInflight(t, srv, 0)

		// Same server, same engine: the next query must run clean.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel2()
		code, resp, err := postSQL(ctx2, cl, ts.URL, "bronze-key", heavy)
		if err != nil || code != http.StatusOK || resp.Result.RowCount == 0 {
			t.Fatalf("follow-up query after disconnect: code %d, err %v", code, err)
		}
		ts.Close()
		cl.CloseIdleConnections()
		settleGoroutines(t, "disconnect-mid", baseline)
		return
	}
	t.Fatalf("query kept completing before the disconnect up to %d rows", rows)
}
