package serve

import (
	"container/list"
	"sync"

	"repro/internal/sql"
)

// PlanCache is the server-side prepared-statement cache: one validated
// sql.Stmt per (tenant, statement text, session-config), so repeated
// submissions of the same statement skip the parse-and-validate pass
// and the daemon's hot path is Bind + Exec.
//
// Staleness is impossible by construction rather than by discipline:
// every entry records the engine's catalog epoch at preparation, and a
// lookup whose entry was prepared under an older epoch is a miss — the
// entry is dropped and the statement re-prepared against the current
// catalog. Engine.Register bumps the epoch, so the instant a relation
// is replaced, every cached plan that might have validated against the
// old schema (or carry plan text reflecting the old table) is
// unservable. The Invalidations counter distinguishes these
// epoch-forced misses from cold ones.
//
// Capacity is a plain LRU bound: the cache never exceeds cap entries,
// evicting the least recently used. All methods are safe for
// concurrent use.
type PlanCache struct {
	mu  sync.Mutex
	cap int
	lru *list.List // front = most recent; values are *cacheEntry
	byK map[string]*list.Element

	hits          uint64
	misses        uint64
	invalidations uint64
	evictions     uint64
}

type cacheEntry struct {
	key   string
	stmt  *sql.Stmt
	epoch uint64
}

// PlanCacheStats is a counter snapshot for /metrics.
type PlanCacheStats struct {
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
}

// NewPlanCache returns a cache bounded to capacity entries (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{cap: capacity, lru: list.New(), byK: map[string]*list.Element{}}
}

// Key builds the canonical cache key.
func (c *PlanCache) Key(tenant *Tenant, statement string) string {
	return tenant.Name + "\x00" + tenant.configKey() + "\x00" + statement
}

// Get returns the cached statement for key if one exists AND it was
// prepared under the given catalog epoch. An entry from an older epoch
// is removed and counted as an invalidation (the caller re-prepares); a
// plain absence is a miss.
func (c *PlanCache) Get(key string, epoch uint64) (*sql.Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch {
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.stmt, true
}

// Put stores a statement prepared under the given epoch, evicting the
// least recently used entry when full. A concurrent Put for the same
// key just refreshes the entry.
func (c *PlanCache) Put(key string, stmt *sql.Stmt, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[key]; ok {
		el.Value.(*cacheEntry).stmt = stmt
		el.Value.(*cacheEntry).epoch = epoch
		c.lru.MoveToFront(el)
		return
	}
	c.byK[key] = c.lru.PushFront(&cacheEntry{key: key, stmt: stmt, epoch: epoch})
	for c.lru.Len() > c.cap {
		c.removeLocked(c.lru.Back())
		c.evictions++
	}
}

// removeLocked unlinks one element. Callers hold c.mu.
func (c *PlanCache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	delete(c.byK, el.Value.(*cacheEntry).key)
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Entries: c.lru.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses,
		Invalidations: c.invalidations, Evictions: c.evictions,
	}
}
