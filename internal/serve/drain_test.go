package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/serve/wire"
)

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (small slack for runtime helpers) and fails if it does not —
// the serving-layer leak detector, same idiom as the sql package's
// cancellation suite.
func settleGoroutines(t *testing.T, name string, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: %d running, baseline %d", name, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitInflight polls the server until the in-flight count reaches want.
func waitInflight(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.MetricsSnapshot().Inflight != want {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight count never reached %d (at %d)", want, srv.MetricsSnapshot().Inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainGraceful is the graceful-shutdown acceptance test: a query
// in flight when Drain starts — parked at the fabric's admission
// barrier behind an announced-but-unfilled gang slot — completes with
// correct rows because Drain withdraws the orphan slot; submissions
// after Drain get 503 on every endpoint; and no goroutines are left
// behind.
func TestDrainGraceful(t *testing.T) {
	srv := testServer(t, 2000)
	h := srv.Handler()
	baseline := runtime.NumGoroutine()

	// Announce a gang of 2. Only one query will ever arrive, so its
	// admission round cannot run until the orphan slot is withdrawn —
	// exactly what Drain must do, or the in-flight query never finishes
	// and Drain deadlocks.
	if code := do(t, h, "POST", "/v1/gang", "gold-key", GangRequest{Announce: 2}, nil); code != http.StatusOK {
		t.Fatalf("gang announce: %d", code)
	}

	type outcome struct {
		code int
		resp QueryResponse
	}
	done := make(chan outcome, 1)
	go func() {
		body, _ := json.Marshal(QueryRequest{SQL: testQuery})
		req := httptest.NewRequest("POST", "/v1/sql", bytes.NewReader(body))
		req.Header.Set("X-API-Key", "gold-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var o outcome
		o.code = rec.Code
		_ = json.NewDecoder(rec.Body).Decode(&o.resp)
		done <- o
	}()
	waitInflight(t, srv, 1)
	// Give the query time to actually park at the barrier (floor 2, one
	// party): drain must resolve the park, not just race past it.
	time.Sleep(200 * time.Millisecond)
	select {
	case o := <-done:
		t.Fatalf("query finished before drain despite gang floor (code %d)", o.code)
	default:
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v (in-flight query stuck at the admission barrier?)", err)
	}

	var o outcome
	select {
	case o = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query response never arrived after drain")
	}
	if o.code != http.StatusOK {
		t.Fatalf("in-flight query during drain: code %d, want 200", o.code)
	}
	// Row-correctness of the drained query: identical to a fresh direct
	// execution.
	ref, err := testEngine(t, 2000).Session().Query(context.Background(), testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if wire.Fingerprint(o.resp.Result) != wire.Fingerprint(wire.FromResult(ref)) {
		t.Fatal("query drained with wrong rows")
	}

	// Everything after drain is refused.
	if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain sql: code %d, want 503", code)
	}
	if code := do(t, h, "POST", "/v1/tables", "gold-key", TableRequest{Name: "x"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain tables: code %d, want 503", code)
	}
	if code := do(t, h, "POST", "/v1/gang", "gold-key", GangRequest{Announce: 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain gang: code %d, want 503", code)
	}
	var m Metrics
	do(t, h, "GET", "/metrics", "", nil, &m)
	if !m.Draining || m.Inflight != 0 {
		t.Fatalf("post-drain metrics: %+v", m)
	}

	// Drain is idempotent: a second call returns immediately.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := srv.Drain(ctx2); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	settleGoroutines(t, "drain", baseline)
}

// TestDrainEndpoint drives the same flow over POST /drain.
func TestDrainEndpoint(t *testing.T) {
	srv := testServer(t, 200)
	h := srv.Handler()
	var m Metrics
	if code := do(t, h, "POST", "/drain", "", nil, &m); code != http.StatusOK {
		t.Fatalf("drain endpoint: %d", code)
	}
	if !m.Draining {
		t.Fatal("drain response should report draining")
	}
	if code := do(t, h, "POST", "/v1/sql", "gold-key", QueryRequest{SQL: testQuery}, nil); code != http.StatusServiceUnavailable {
		t.Fatal("post-drain query accepted")
	}
}
