package chiplet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYieldDecreasesWithArea(t *testing.T) {
	if N16.Yield(50) <= N16.Yield(300) {
		t.Fatal("bigger dies must yield worse")
	}
	if y := N16.Yield(0); y != 1 {
		t.Fatalf("zero-area yield = %v, want 1", y)
	}
}

func TestYieldDecreasesWithDefectDensity(t *testing.T) {
	if N28.Yield(200) <= N10.Yield(200) {
		t.Fatal("mature node (lower D0) must yield better at equal area")
	}
}

func TestYieldInUnitIntervalProperty(t *testing.T) {
	f := func(a float64) bool {
		area := math.Mod(math.Abs(a), 800) // realistic die sizes
		y := N16.Yield(area)
		return y > 0 && y <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiesPerWaferGeometry(t *testing.T) {
	// 100 mm² die on a 300 mm wafer: ~640 gross dies by the standard
	// approximation.
	n := DiesPerWafer(100)
	if n < 550 || n > 700 {
		t.Fatalf("dies per wafer = %v, want ~640", n)
	}
	if small, big := DiesPerWafer(50), DiesPerWafer(400); small <= big {
		t.Fatal("smaller dies must give more per wafer")
	}
}

func TestDieCostGrowsSuperlinearlyWithArea(t *testing.T) {
	// Doubling area more than doubles good-die cost (fewer dies AND worse
	// yield).
	c1 := N16.DieCostEUR(150)
	c2 := N16.DieCostEUR(300)
	if c2 <= 2*c1 {
		t.Fatalf("300mm² (%v) should cost > 2x 150mm² (%v)", c2, c1)
	}
}

func TestSoCUsesLeadingNode(t *testing.T) {
	s := EuroserverSoC()
	if got := s.node().Name; got != "16nm" {
		t.Fatalf("SoC node = %s, want 16nm (most expensive block)", got)
	}
	if s.NREEUR() != N16.MaskNREEUR {
		t.Fatalf("SoC NRE = %v, want full 16nm mask set", s.NREEUR())
	}
}

func TestSiPSplitsNodesAndNRE(t *testing.T) {
	s := EuroserverSiP()
	// Only hub + io NRE borne (compute reused): 2 × 28nm mask sets.
	if want := 2 * N28.MaskNREEUR; s.NREEUR() != want {
		t.Fatalf("SiP NRE = %v, want %v", s.NREEUR(), want)
	}
}

func TestSiPCheaperAtLowVolumeSoCAtHigh(t *testing.T) {
	soc := EuroserverSoC()
	sip := EuroserverSiP()
	lowV, highV := 20e3, 20e6
	if sip.ProductCostEUR(lowV) >= soc.ProductCostEUR(lowV) {
		t.Fatalf("at %g units SiP (%v) should beat SoC (%v) — NRE dominates",
			lowV, sip.ProductCostEUR(lowV), soc.ProductCostEUR(lowV))
	}
	if soc.ProductCostEUR(highV) >= sip.ProductCostEUR(highV) {
		t.Fatalf("at %g units SoC (%v) should beat SiP (%v) — packaging overhead dominates",
			highV, soc.ProductCostEUR(highV), sip.ProductCostEUR(highV))
	}
}

func TestCrossoverVolumeFound(t *testing.T) {
	soc := EuroserverSoC()
	sip := EuroserverSiP()
	v, socWins := CrossoverVolume(soc, sip)
	if !socWins {
		t.Fatal("SoC must win at extreme volume")
	}
	if v <= 1 || v >= 1e9 {
		t.Fatalf("crossover volume = %v, want interior point", v)
	}
	// Verify the crossover is genuine.
	if soc.ProductCostEUR(v*1.1) >= sip.ProductCostEUR(v*1.1) {
		t.Fatal("SoC not cheaper just above crossover")
	}
	if soc.ProductCostEUR(v*0.9) < sip.ProductCostEUR(v*0.9) {
		t.Fatal("SoC already cheaper just below crossover")
	}
}

func TestSiliconCostSiPBeatsMonolithic(t *testing.T) {
	// Pure silicon: three small dies on right-fit nodes beat one big
	// leading-edge die.
	soc := EuroserverSoC()
	sip := EuroserverSiP()
	if sip.SiliconCostEUR() >= soc.SiliconCostEUR() {
		t.Fatalf("SiP silicon (%v) should undercut SoC silicon (%v)",
			sip.SiliconCostEUR(), soc.SiliconCostEUR())
	}
	// But at this modest 240 mm² total, packaging overhead exceeds the
	// yield saving: the monolithic *unit* cost stays lower. The unit-cost
	// win flips at reticle scale (next test).
	if sip.UnitCostEUR() <= soc.UnitCostEUR() {
		t.Fatalf("small product: SoC unit (%v) should beat SiP unit (%v)",
			soc.UnitCostEUR(), sip.UnitCostEUR())
	}
}

func TestUnitCostSiPWinsAtReticleScale(t *testing.T) {
	// A ~700 mm² product: monolithic yield collapses and splitting wins on
	// unit cost even after integration overheads.
	blocks := []Die{
		{Name: "compute", AreaMM2: 300, Node: N16},
		{Name: "hub", AreaMM2: 250, Node: N28},
		{Name: "io", AreaMM2: 150, Node: N28, IO: true},
	}
	soc := &SoC{Name: "big-soc", Blocks: blocks}
	sip := NewSiP("big-sip", blocks...)
	if sip.UnitCostEUR() >= soc.UnitCostEUR() {
		t.Fatalf("reticle scale: SiP unit (%v) should beat SoC unit (%v)",
			sip.UnitCostEUR(), soc.UnitCostEUR())
	}
}

func TestRetrofitSoCForcesLeadingRespin(t *testing.T) {
	r := RetrofitSoC(EuroserverSoC())
	if r.NREEUR != N16.MaskNREEUR {
		t.Fatalf("SoC retrofit NRE = %v, want full 16nm respin", r.NREEUR)
	}
}

func TestRetrofitSiPSwapsIOChiplet(t *testing.T) {
	r := RetrofitSiP(EuroserverSiP())
	if r.NREEUR != N28.MaskNREEUR {
		t.Fatalf("SiP retrofit NRE = %v, want 28nm I/O respin", r.NREEUR)
	}
	soc := RetrofitSoC(EuroserverSoC())
	if r.NREEUR >= soc.NREEUR || r.TimeMonths >= soc.TimeMonths {
		t.Fatal("SiP retrofit must be cheaper and faster than SoC respin")
	}
}

func TestRetrofitSiPWithoutIODie(t *testing.T) {
	s := NewSiP("no-io", Die{Name: "compute", AreaMM2: 100, Node: N16})
	r := RetrofitSiP(s)
	if r.NREEUR != N16.MaskNREEUR {
		t.Fatalf("fallback retrofit NRE = %v", r.NREEUR)
	}
}

func TestProductCostInfiniteAtZeroVolume(t *testing.T) {
	if !math.IsInf(EuroserverSoC().ProductCostEUR(0), 1) {
		t.Fatal("zero volume must be infinite cost")
	}
	if !math.IsInf(EuroserverSiP().ProductCostEUR(0), 1) {
		t.Fatal("zero volume must be infinite cost")
	}
}

func TestAssemblyYieldRaisesCost(t *testing.T) {
	a := NewSiP("a", EuroserverParts()...)
	b := NewSiP("b", EuroserverParts()...)
	b.AssemblyYield = 0.90
	if b.UnitCostEUR() <= a.UnitCostEUR() {
		t.Fatal("worse assembly yield must raise unit cost")
	}
}
