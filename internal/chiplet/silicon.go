// Package chiplet models the silicon economics behind Section IV.B.3: the
// cost of a monolithic market-specific SoC versus a System-in-Package
// (SiP) assembled from chiplets, as pioneered by the EUROSERVER project
// the roadmap cites. The model is the standard one used for such
// feasibility arguments: negative-binomial die yield, dies-per-wafer
// geometry, per-node wafer and mask-set (NRE) costs, and packaging/test
// overheads for multi-die integration. The roadmap's claims are about
// ratios — smaller dies yield better, mature nodes are cheaper, an I/O
// retrofit should not force a leading-edge respin — all of which this
// model exposes.
package chiplet

import (
	"fmt"
	"math"
)

// ProcessNode is one silicon technology generation.
type ProcessNode struct {
	Name string
	// WaferCostEUR is the processed-wafer price (300 mm).
	WaferCostEUR float64
	// DefectD0 is defect density in defects/cm².
	DefectD0 float64
	// MaskNREEUR is the full mask-set + design-enablement NRE.
	MaskNREEUR float64
	// Leading marks the frontier node (needed for performance-critical
	// compute dies; Section IV.B.3 notes an SoC forces the *whole* design
	// onto this node).
	Leading bool
}

// Nodes of the 2016 era. Defect density improves as nodes mature; wafer
// and mask costs climb steeply toward the edge.
var (
	N28 = ProcessNode{Name: "28nm", WaferCostEUR: 3000, DefectD0: 0.08, MaskNREEUR: 3e6}
	N16 = ProcessNode{Name: "16nm", WaferCostEUR: 6000, DefectD0: 0.12, MaskNREEUR: 12e6, Leading: true}
	N10 = ProcessNode{Name: "10nm", WaferCostEUR: 9000, DefectD0: 0.20, MaskNREEUR: 30e6, Leading: true}
)

// WaferDiameterMM is the standard wafer size.
const WaferDiameterMM = 300

// YieldAlpha is the defect-clustering parameter of the negative-binomial
// yield model (3 is the industry-typical value).
const YieldAlpha = 3.0

// Yield returns the negative-binomial die yield for a die of areaMM2 on
// the node: (1 + A·D0/α)^(−α).
func (n ProcessNode) Yield(areaMM2 float64) float64 {
	if areaMM2 <= 0 {
		return 1
	}
	aCM2 := areaMM2 / 100
	return math.Pow(1+aCM2*n.DefectD0/YieldAlpha, -YieldAlpha)
}

// DiesPerWafer returns the gross dies per wafer for a square die of
// areaMM2, using the standard geometric approximation that discounts edge
// loss.
func DiesPerWafer(areaMM2 float64) float64 {
	if areaMM2 <= 0 {
		return 0
	}
	d := float64(WaferDiameterMM)
	return math.Floor(math.Pi*d*d/(4*areaMM2) - math.Pi*d/math.Sqrt(2*areaMM2))
}

// DieCostEUR returns the cost of one *good* die of areaMM2 on the node.
func (n ProcessNode) DieCostEUR(areaMM2 float64) float64 {
	gross := DiesPerWafer(areaMM2)
	if gross <= 0 {
		return math.Inf(1)
	}
	y := n.Yield(areaMM2)
	if y <= 0 {
		return math.Inf(1)
	}
	return n.WaferCostEUR / (gross * y)
}

// Die is one silicon component of a product.
type Die struct {
	Name    string
	AreaMM2 float64
	Node    ProcessNode
	// IO marks interface dies (NIC/SerDes/PHY); retrofit scenarios swap
	// only these.
	IO bool
}

// SoC is a monolithic product: all blocks merged into one die that must be
// fabricated on a single process — the leading-edge one if any block needs
// it (Section IV.B.3: "the die must be fabricated using an expensive
// leading edge silicon technology").
type SoC struct {
	Name string
	// Blocks are the functional areas folded into the single die.
	Blocks []Die
}

// TotalAreaMM2 sums block areas (monolithic integration gives a modest
// area credit for shared pads/PHY, folded in as 0.95×).
func (s *SoC) TotalAreaMM2() float64 {
	a := 0.0
	for _, b := range s.Blocks {
		a += b.AreaMM2
	}
	return a * 0.95
}

// node returns the process the merged die must use: the most expensive
// (leading) node among blocks.
func (s *SoC) node() ProcessNode {
	best := s.Blocks[0].Node
	for _, b := range s.Blocks[1:] {
		if b.Node.WaferCostEUR > best.WaferCostEUR {
			best = b.Node
		}
	}
	return best
}

// UnitCostEUR returns the silicon cost of one good SoC.
func (s *SoC) UnitCostEUR() float64 {
	return s.node().DieCostEUR(s.TotalAreaMM2())
}

// SiliconCostEUR is the good-die silicon cost alone (identical to
// UnitCostEUR for a monolithic part; provided for symmetry with SiP).
func (s *SoC) SiliconCostEUR() float64 { return s.UnitCostEUR() }

// NREEUR returns the mask-set NRE: one full set on the merged die's node.
func (s *SoC) NREEUR() float64 { return s.node().MaskNREEUR }

// ProductCostEUR returns per-unit cost at the given volume: silicon plus
// amortized NRE plus single-die packaging.
func (s *SoC) ProductCostEUR(volume float64) float64 {
	if volume <= 0 {
		return math.Inf(1)
	}
	const packageEUR = 8 // single-die flip-chip package
	return s.UnitCostEUR() + packageEUR + s.NREEUR()/volume
}

// SiP is a multi-die product: chiplets on their own best-fit nodes, joined
// in one package. Mature-node chiplets can be reused across products, so
// their NRE may be shared.
type SiP struct {
	Name     string
	Chiplets []Die
	// ReusedNRE marks chiplets whose mask sets are amortized elsewhere
	// (commodity compute chiplets bought from a catalog); indexed like
	// Chiplets. Nil means all NRE is borne by this product.
	ReusedNRE []bool
	// PackagePremiumEUR is the multi-die package/interposer cost.
	PackagePremiumEUR float64
	// KGDTestEUR is the known-good-die test cost per chiplet.
	KGDTestEUR float64
	// AssemblyYield is the per-package assembly success rate.
	AssemblyYield float64
}

// NewSiP returns a SiP with representative integration overheads:
// 25 EUR package premium, 2 EUR KGD test per chiplet, 98% assembly yield.
func NewSiP(name string, chiplets ...Die) *SiP {
	return &SiP{
		Name: name, Chiplets: chiplets,
		PackagePremiumEUR: 25, KGDTestEUR: 2, AssemblyYield: 0.98,
	}
}

// SiliconCostEUR sums the good-die costs of the chiplets, excluding
// packaging, test and assembly-yield overheads. Splitting a design always
// wins on this term (smaller dies yield better on right-fit nodes); whether
// the *unit* cost wins depends on whether that saving exceeds the
// integration overhead — it does for reticle-scale products, not for small
// ones. See the E7 experiment.
func (s *SiP) SiliconCostEUR() float64 {
	total := 0.0
	for _, c := range s.Chiplets {
		total += c.Node.DieCostEUR(c.AreaMM2)
	}
	return total
}

// UnitCostEUR returns the silicon + integration cost of one good SiP.
func (s *SiP) UnitCostEUR() float64 {
	total := s.PackagePremiumEUR
	for _, c := range s.Chiplets {
		total += c.Node.DieCostEUR(c.AreaMM2) + s.KGDTestEUR
	}
	if s.AssemblyYield > 0 {
		total /= s.AssemblyYield
	}
	return total
}

// NREEUR returns the mask NRE this product must fund: one mask set per
// non-reused chiplet, on that chiplet's own node.
func (s *SiP) NREEUR() float64 {
	total := 0.0
	for i, c := range s.Chiplets {
		if s.ReusedNRE != nil && i < len(s.ReusedNRE) && s.ReusedNRE[i] {
			continue
		}
		total += c.Node.MaskNREEUR
	}
	return total
}

// ProductCostEUR returns per-unit cost at the given volume.
func (s *SiP) ProductCostEUR(volume float64) float64 {
	if volume <= 0 {
		return math.Inf(1)
	}
	return s.UnitCostEUR() + s.NREEUR()/volume
}

// Product is either packaging style.
type Product interface {
	ProductCostEUR(volume float64) float64
	NREEUR() float64
	UnitCostEUR() float64
}

// CrossoverVolume returns the volume at which a's per-unit cost drops to
// b's, searching volumes in [1, 1e9]. It returns 0 when a never becomes
// cheaper in that range and reports which side wins at 1e9.
func CrossoverVolume(a, b Product) (volume float64, aWinsAtScale bool) {
	lo, hi := 1.0, 1e9
	aAtHi := a.ProductCostEUR(hi)
	bAtHi := b.ProductCostEUR(hi)
	aWinsAtScale = aAtHi < bAtHi
	if a.ProductCostEUR(lo) < b.ProductCostEUR(lo) {
		return lo, aWinsAtScale // a already cheaper at volume 1
	}
	if !aWinsAtScale {
		return 0, false
	}
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if a.ProductCostEUR(mid) < b.ProductCostEUR(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// Retrofit models adding a new interface (the roadmap's example: a 40 GbE
// port) to an existing product.
type Retrofit struct {
	// NREEUR is the engineering + mask cost of the change.
	NREEUR float64
	// TimeMonths is the design-to-silicon lead time.
	TimeMonths float64
	// Description says what had to be redone.
	Description string
}

// RetrofitSoC returns the cost of adding an interface to a monolithic SoC:
// the whole die respins on its (leading) node — full mask set again plus
// a long schedule.
func RetrofitSoC(s *SoC) Retrofit {
	return Retrofit{
		NREEUR:      s.node().MaskNREEUR,
		TimeMonths:  18,
		Description: fmt.Sprintf("full respin of %s on %s", s.Name, s.node().Name),
	}
}

// RetrofitSiP returns the cost of adding an interface to a SiP: only the
// I/O chiplet respins, on its own mature node; other chiplets are
// untouched. If the SiP has no I/O chiplet the new interface needs a new
// small die on the cheapest node present.
func RetrofitSiP(s *SiP) Retrofit {
	var io *Die
	for i := range s.Chiplets {
		if s.Chiplets[i].IO {
			io = &s.Chiplets[i]
			break
		}
	}
	if io == nil {
		cheapest := s.Chiplets[0].Node
		for _, c := range s.Chiplets[1:] {
			if c.Node.MaskNREEUR < cheapest.MaskNREEUR {
				cheapest = c.Node
			}
		}
		return Retrofit{
			NREEUR:      cheapest.MaskNREEUR,
			TimeMonths:  9,
			Description: fmt.Sprintf("new I/O chiplet for %s on %s", s.Name, cheapest.Name),
		}
	}
	return Retrofit{
		NREEUR:      io.Node.MaskNREEUR,
		TimeMonths:  9,
		Description: fmt.Sprintf("respin of I/O chiplet %s on %s", io.Name, io.Node.Name),
	}
}

// EuroserverParts returns the dies of a EUROSERVER-style microserver: a
// leading-node compute chiplet, a mature-node memory/peripheral hub, and a
// mature-node I/O chiplet. Folding the same blocks into one die gives the
// SoC comparator.
func EuroserverParts() []Die {
	return []Die{
		{Name: "compute", AreaMM2: 120, Node: N16},
		{Name: "hub", AreaMM2: 80, Node: N28},
		{Name: "io", AreaMM2: 40, Node: N28, IO: true},
	}
}

// EuroserverSoC folds the parts into a monolithic SoC.
func EuroserverSoC() *SoC { return &SoC{Name: "mono-soc", Blocks: EuroserverParts()} }

// EuroserverSiP assembles the parts as chiplets, with the compute chiplet's
// NRE treated as reused commodity silicon (the roadmap's "market-specific
// products ... built from commodity compute chiplet(s)").
func EuroserverSiP() *SiP {
	s := NewSiP("euroserver-sip", EuroserverParts()...)
	s.ReusedNRE = []bool{true, false, false}
	return s
}
