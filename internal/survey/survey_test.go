package survey

import (
	"math/rand"
	"testing"
)

func corpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := Synthesize(DefaultSpec(2016))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCorpusMatchesPaperHeadlineNumbers(t *testing.T) {
	c := corpus(t)
	if len(c.Interviews) != 89 {
		t.Fatalf("interviews = %d, want 89", len(c.Interviews))
	}
	if len(c.Companies) != 70 {
		t.Fatalf("companies = %d, want 70", len(c.Companies))
	}
	if got := c.DistinctCompanies(); got != 70 {
		t.Fatalf("distinct interviewed companies = %d, want 70 (every company interviewed)", got)
	}
}

func TestSectorCoverage(t *testing.T) {
	c := corpus(t)
	counts := c.SectorCounts()
	// The paper names six sectors with "strong representation": all must
	// be present in the corpus.
	for _, s := range []Sector{Telecom, HardwareDesign, Health, Automotive, Finance, Analytics} {
		if counts[s] == 0 {
			t.Fatalf("sector %v unrepresented", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Synthesize(DefaultSpec(7))
	b, _ := Synthesize(DefaultSpec(7))
	if len(a.Interviews) != len(b.Interviews) {
		t.Fatal("sizes differ")
	}
	for i := range a.Interviews {
		if a.Interviews[i] != b.Interviews[i] {
			t.Fatalf("interview %d differs across identical seeds", i)
		}
	}
	c, _ := Synthesize(DefaultSpec(8))
	same := true
	for i := range a.Interviews {
		if a.Interviews[i] != c.Interviews[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCalibrationRatesReproduced(t *testing.T) {
	// The synthesized marginals must sit near the calibrated targets
	// (sampling noise at n≈70 end-user interviews allows ~±12%).
	c := corpus(t)
	r := DefaultRates()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"end-user no roadmap",
			1 - c.Proportion(EndUsers, func(iv Interview) bool { return iv.HasHardwareRoadmap }),
			r.EndUserNoRoadmap},
		{"end-user commodity only",
			c.Proportion(EndUsers, func(iv Interview) bool { return iv.UsesCommodityOnly }),
			r.EndUserCommodityOnly},
		{"end-user sees bottleneck",
			c.Proportion(EndUsers, func(iv Interview) bool { return iv.SeesHWBottleneck }),
			r.EndUserSeesBottleneck},
		{"end-user convinced ROI",
			c.Proportion(EndUsers, func(iv Interview) bool { return iv.ConvincedROI }),
			r.EndUserConvincedROI},
	}
	for _, ch := range checks {
		if diff := ch.got - ch.want; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s = %.2f, calibration target %.2f", ch.name, ch.got, ch.want)
		}
	}
}

func TestProvidersMoreHardwareAware(t *testing.T) {
	c := corpus(t)
	pRoadmap := c.Proportion(Providers, func(iv Interview) bool { return iv.HasHardwareRoadmap })
	eRoadmap := c.Proportion(EndUsers, func(iv Interview) bool { return iv.HasHardwareRoadmap })
	if pRoadmap <= eRoadmap {
		t.Fatalf("providers (%v) should have roadmaps more often than end users (%v)", pRoadmap, eRoadmap)
	}
}

func TestAllFourFindingsHold(t *testing.T) {
	fs := DeriveFindings(corpus(t))
	if len(fs) != 4 {
		t.Fatalf("findings = %d, want 4", len(fs))
	}
	for _, f := range fs {
		if !f.Holds {
			t.Errorf("finding %d does not hold: %s (support %.2f, %s)", f.ID, f.Statement, f.Support, f.Detail)
		}
		if f.Support <= 0 || f.Support > 1 {
			t.Errorf("finding %d support %v out of range", f.ID, f.Support)
		}
		if f.Statement == "" || f.Detail == "" {
			t.Errorf("finding %d lacks text", f.ID)
		}
	}
}

func TestFindingsRobustAcrossSeeds(t *testing.T) {
	// The findings must be properties of the calibration, not artifacts of
	// one seed. At n≈65 end-user interviews individual corpora carry real
	// sampling noise, so the statistical claim is: each finding holds in
	// the overwhelming majority of synthesized corpora.
	const seeds = 100
	rng := rand.New(rand.NewSource(12345))
	holdCount := [5]int{}
	for i := 0; i < seeds; i++ {
		c, err := Synthesize(DefaultSpec(rng.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		for _, fd := range DeriveFindings(c) {
			if fd.Holds {
				holdCount[fd.ID]++
			}
		}
	}
	for id := 1; id <= 4; id++ {
		rate := float64(holdCount[id]) / seeds
		if rate < 0.9 {
			t.Errorf("finding %d holds in only %.0f%% of corpora, want >= 90%%", id, rate*100)
		}
	}
}

func TestCrossTabTotalsMatch(t *testing.T) {
	c := corpus(t)
	tab := c.CrossTab(func(iv Interview) bool { return iv.PriceSensitive })
	total := 0
	for _, cell := range tab {
		total += cell[0] + cell[1]
	}
	if total != len(c.Interviews) {
		t.Fatalf("cross-tab total %d != %d interviews", total, len(c.Interviews))
	}
}

func TestSynthesizeValidation(t *testing.T) {
	if _, err := Synthesize(Spec{Companies: 0, Interviews: 10}); err == nil {
		t.Fatal("zero companies must fail")
	}
	if _, err := Synthesize(Spec{Companies: 10, Interviews: 5}); err == nil {
		t.Fatal("fewer interviews than companies must fail")
	}
}

func TestProportionEmptyFilter(t *testing.T) {
	c := corpus(t)
	if p := c.Proportion(func(Company) bool { return false }, func(Interview) bool { return true }); p != 0 {
		t.Fatalf("empty filter proportion = %v", p)
	}
}
