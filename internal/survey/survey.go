// Package survey models the RETHINK big evidence base: "89 in-depth
// interviews with key stakeholders from more than 70 distinct European
// companies" across "telecommunications, hardware design and manufacturers
// as well as strong representation from health, automotive, financial and
// analytics sectors" (Section V.A). The interviews themselves are
// proprietary, so — per the reproduction's substitution rule — this
// package synthesizes a deterministic corpus whose marginal distributions
// are calibrated to every aggregate statement the paper makes, and
// provides the cross-tabulation queries from which internal/core
// re-derives the four key findings.
package survey

import (
	"fmt"

	"repro/internal/sim"
)

// Sector classifies a company.
type Sector int

// Sectors named in Section V.A.
const (
	Telecom Sector = iota
	HardwareDesign
	Health
	Automotive
	Finance
	Analytics
	Other
	numSectors
)

// String implements fmt.Stringer.
func (s Sector) String() string {
	switch s {
	case Telecom:
		return "telecom"
	case HardwareDesign:
		return "hardware"
	case Health:
		return "health"
	case Automotive:
		return "automotive"
	case Finance:
		return "finance"
	case Analytics:
		return "analytics"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("sector(%d)", int(s))
	}
}

// Sectors returns all sectors in order.
func Sectors() []Sector {
	return []Sector{Telecom, HardwareDesign, Health, Automotive, Finance, Analytics, Other}
}

// Size classifies company scale.
type Size int

// Sizes: the consortium spanned "large industry partners, SMEs and
// academia"; the interview base was industry.
const (
	SME Size = iota
	Large
)

// String implements fmt.Stringer.
func (s Size) String() string {
	if s == Large {
		return "large"
	}
	return "sme"
}

// Company is one interviewed organization.
type Company struct {
	ID     int
	Name   string
	Sector Sector
	Size   Size
	// TechProvider marks hardware/technology suppliers as opposed to
	// analytics/end-user companies — the two sides whose "large
	// disconnect" Finding 3 describes.
	TechProvider bool
}

// Interview is one stakeholder response. Fields encode the aggregate
// claims of Sections IV.B and V.A.
type Interview struct {
	ID        int
	CompanyID int
	// FocusedOnValue: the company is "still focused on how to extract
	// value from their data" rather than on processing bottlenecks
	// (Finding 1).
	FocusedOnValue bool
	// SeesHWBottleneck: the company reports Big-Data *hardware* processing
	// problems (Finding 1 says the overwhelming response is no).
	SeesHWBottleneck bool
	// ConvincedROI: convinced of the return on investment of novel
	// hardware (Finding 2 says mostly no).
	ConvincedROI bool
	// HasHardwareRoadmap (Section IV.B.1: "the majority of European
	// software vendors reported that they had no hardware roadmap").
	HasHardwareRoadmap bool
	// UsesCommodityOnly: "only looking at existing commodity hardware".
	UsesCommodityOnly bool
	// CollaboratesAcrossStack: works with hardware/software partners
	// (Finding 3: Europe has limited opportunities for this).
	CollaboratesAcrossStack bool
	// PriceSensitive: procurement decisions dominated by price
	// ("extreme price-sensitivity", Finding 2).
	PriceSensitive bool
}

// Corpus is the full evidence base.
type Corpus struct {
	Companies  []Company
	Interviews []Interview
}

// CalibratedRates are the generative probabilities fitted to the paper's
// aggregate statements. They differ by company role: the claims about
// missing hardware roadmaps and commodity-only procurement are made about
// analytics/end-user companies, not about technology providers.
type CalibratedRates struct {
	// Analytics/end-user side.
	EndUserNoRoadmap      float64 // "almost all analytics companies" ≈ 0.9
	EndUserCommodityOnly  float64
	EndUserSeesBottleneck float64 // "overwhelming response" is no ≈ 0.15 yes
	EndUserConvincedROI   float64 // "majority ... not convinced" ≈ 0.3 yes
	EndUserValueFocus     float64 // "industry is still focused on value" ≈ 0.85
	EndUserCollaborates   float64 // "limited opportunities" ≈ 0.2
	PriceSensitive        float64
	// Technology-provider side (more hardware-aware by construction).
	ProviderNoRoadmap    float64
	ProviderCollaborates float64
}

// DefaultRates returns the calibration used throughout the reproduction.
func DefaultRates() CalibratedRates {
	return CalibratedRates{
		EndUserNoRoadmap:      0.90,
		EndUserCommodityOnly:  0.85,
		EndUserSeesBottleneck: 0.15,
		EndUserConvincedROI:   0.30,
		EndUserValueFocus:     0.85,
		EndUserCollaborates:   0.20,
		PriceSensitive:        0.70,
		ProviderNoRoadmap:     0.25,
		ProviderCollaborates:  0.45,
	}
}

// Spec drives corpus synthesis; defaults reproduce the paper's numbers.
type Spec struct {
	Seed       uint64
	Companies  int // paper: 70
	Interviews int // paper: 89 (some companies interviewed more than once)
	Rates      CalibratedRates
}

// DefaultSpec returns the paper-calibrated specification.
func DefaultSpec(seed uint64) Spec {
	return Spec{Seed: seed, Companies: 70, Interviews: 89, Rates: DefaultRates()}
}

// sectorWeights reflect "major and up-and-coming players from
// telecommunications, hardware design and manufacturers as well as strong
// representation from health, automotive, financial and analytics".
var sectorWeights = []float64{
	Telecom:        0.18,
	HardwareDesign: 0.15,
	Health:         0.12,
	Automotive:     0.12,
	Finance:        0.13,
	Analytics:      0.22,
	Other:          0.08,
}

// Synthesize builds the deterministic corpus.
func Synthesize(spec Spec) (*Corpus, error) {
	if spec.Companies <= 0 || spec.Interviews < spec.Companies {
		return nil, fmt.Errorf("survey: need at least one interview per company (%d companies, %d interviews)",
			spec.Companies, spec.Interviews)
	}
	rng := sim.NewRNG(spec.Seed)
	c := &Corpus{}
	for i := 0; i < spec.Companies; i++ {
		sector := Sector(rng.Choice(sectorWeights))
		size := SME
		if rng.Bool(0.4) {
			size = Large
		}
		c.Companies = append(c.Companies, Company{
			ID:     i,
			Name:   fmt.Sprintf("company-%02d", i),
			Sector: sector,
			Size:   size,
			// Hardware-design companies are providers; a few telecoms too.
			TechProvider: sector == HardwareDesign || (sector == Telecom && rng.Bool(0.3)),
		})
	}
	// Every company is interviewed once; the surplus interviews revisit
	// key stakeholders (weighted toward large companies).
	order := rng.Perm(spec.Companies)
	var companyFor []int
	companyFor = append(companyFor, order...)
	for len(companyFor) < spec.Interviews {
		cand := rng.Intn(spec.Companies)
		if c.Companies[cand].Size == Large || rng.Bool(0.3) {
			companyFor = append(companyFor, cand)
		}
	}
	r := spec.Rates
	for i := 0; i < spec.Interviews; i++ {
		comp := c.Companies[companyFor[i]]
		var iv Interview
		iv.ID = i
		iv.CompanyID = comp.ID
		if comp.TechProvider {
			iv.HasHardwareRoadmap = !rng.Bool(r.ProviderNoRoadmap)
			iv.CollaboratesAcrossStack = rng.Bool(r.ProviderCollaborates)
			iv.SeesHWBottleneck = rng.Bool(0.5)
			iv.ConvincedROI = rng.Bool(0.6)
			iv.FocusedOnValue = rng.Bool(0.4)
			iv.UsesCommodityOnly = rng.Bool(0.3)
		} else {
			iv.HasHardwareRoadmap = !rng.Bool(r.EndUserNoRoadmap)
			iv.CollaboratesAcrossStack = rng.Bool(r.EndUserCollaborates)
			iv.SeesHWBottleneck = rng.Bool(r.EndUserSeesBottleneck)
			iv.ConvincedROI = rng.Bool(r.EndUserConvincedROI)
			iv.FocusedOnValue = rng.Bool(r.EndUserValueFocus)
			iv.UsesCommodityOnly = rng.Bool(r.EndUserCommodityOnly)
		}
		iv.PriceSensitive = rng.Bool(r.PriceSensitive)
		c.Interviews = append(c.Interviews, iv)
	}
	return c, nil
}

// DistinctCompanies returns the number of companies with at least one
// interview.
func (c *Corpus) DistinctCompanies() int {
	seen := map[int]bool{}
	for _, iv := range c.Interviews {
		seen[iv.CompanyID] = true
	}
	return len(seen)
}

// company looks a company up by ID.
func (c *Corpus) company(id int) Company { return c.Companies[id] }

// Proportion returns the fraction of interviews (optionally restricted by
// filter; nil means all) for which pred holds.
func (c *Corpus) Proportion(filter func(Company) bool, pred func(Interview) bool) float64 {
	n, hits := 0, 0
	for _, iv := range c.Interviews {
		if filter != nil && !filter(c.company(iv.CompanyID)) {
			continue
		}
		n++
		if pred(iv) {
			hits++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// CrossTab counts interviews by (sector, predicate) — the cross-tables
// behind the findings chapter.
func (c *Corpus) CrossTab(pred func(Interview) bool) map[Sector][2]int {
	out := map[Sector][2]int{}
	for _, iv := range c.Interviews {
		s := c.company(iv.CompanyID).Sector
		cell := out[s]
		if pred(iv) {
			cell[0]++
		} else {
			cell[1]++
		}
		out[s] = cell
	}
	return out
}

// SectorCounts returns interviews per sector.
func (c *Corpus) SectorCounts() map[Sector]int {
	out := map[Sector]int{}
	for _, iv := range c.Interviews {
		out[c.company(iv.CompanyID).Sector]++
	}
	return out
}

// EndUsers filters to non-provider companies.
func EndUsers(co Company) bool { return !co.TechProvider }

// Providers filters to technology providers.
func Providers(co Company) bool { return co.TechProvider }
