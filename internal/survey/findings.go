package survey

import "fmt"

// Finding is one of the paper's Section V.A key findings, re-derived from
// the corpus with its supporting statistic.
type Finding struct {
	ID        int
	Statement string
	// Support is the corpus statistic backing the finding, in [0, 1], and
	// Detail explains what it measures.
	Support float64
	Detail  string
	// Holds reports whether the corpus supports the finding at the
	// stated threshold.
	Holds bool
}

// DeriveFindings recomputes the paper's four key findings from the
// corpus. The thresholds encode the paper's qualitative quantifiers
// ("overwhelming", "majority", "almost all").
func DeriveFindings(c *Corpus) []Finding {
	var out []Finding

	// Finding 1: industry focuses on value, not on hardware bottlenecks.
	noBottleneck := 1 - c.Proportion(EndUsers, func(iv Interview) bool { return iv.SeesHWBottleneck })
	valueFocus := c.Proportion(EndUsers, func(iv Interview) bool { return iv.FocusedOnValue })
	f1 := (noBottleneck + valueFocus) / 2
	out = append(out, Finding{
		ID: 1,
		Statement: "Industry is still focused on how to extract value from their data; " +
			"it does not see Big Data hardware processing problems, only value opportunities.",
		Support: f1,
		Detail: fmt.Sprintf("%.0f%% of end-user interviews report no hardware bottleneck; "+
			"%.0f%% are value-focused", noBottleneck*100, valueFocus*100),
		Holds: noBottleneck >= 0.7 && valueFocus >= 0.7,
	})

	// Finding 2: not convinced of novel-hardware ROI.
	notConvinced := 1 - c.Proportion(EndUsers, func(iv Interview) bool { return iv.ConvincedROI })
	price := c.Proportion(nil, func(iv Interview) bool { return iv.PriceSensitive })
	out = append(out, Finding{
		ID: 2,
		Statement: "European companies are not convinced of the Return on Investment " +
			"of using novel hardware.",
		Support: notConvinced,
		Detail: fmt.Sprintf("%.0f%% of end-user interviews unconvinced of ROI; "+
			"%.0f%% report price-driven procurement", notConvinced*100, price*100),
		// The paper's quantifier is "the majority of the companies were
		// not convinced": a majority threshold with margin for sampling
		// noise at n≈65 end-user interviews.
		Holds: notConvinced >= 0.55,
	})

	// Finding 3: limited hardware/software co-design opportunities.
	noCollab := 1 - c.Proportion(EndUsers, func(iv Interview) bool { return iv.CollaboratesAcrossStack })
	noRoadmap := 1 - c.Proportion(EndUsers, func(iv Interview) bool { return iv.HasHardwareRoadmap })
	out = append(out, Finding{
		ID: 3,
		Statement: "Europe has limited opportunities for hardware and software " +
			"architects to work together; the ecosystem is fragmented.",
		Support: noCollab,
		Detail: fmt.Sprintf("%.0f%% of end-user interviews report no cross-stack "+
			"collaboration; %.0f%% have no hardware roadmap", noCollab*100, noRoadmap*100),
		Holds: noCollab >= 0.6 && noRoadmap >= 0.7,
	})

	// Finding 4: dominance of non-European server vendors. This is a
	// market-structure fact, proxied in the corpus by commodity-only
	// procurement (everyone buys the incumbent's silicon).
	commodity := c.Proportion(EndUsers, func(iv Interview) bool { return iv.UsesCommodityOnly })
	out = append(out, Finding{
		ID: 4,
		Statement: "Dominance of non-European companies in the server market " +
			"complicates new European entrants in specialized architectures.",
		Support: commodity,
		Detail: fmt.Sprintf("%.0f%% of end-user interviews procure commodity "+
			"(incumbent) hardware only", commodity*100),
		Holds: commodity >= 0.7,
	})
	return out
}
