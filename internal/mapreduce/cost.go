package mapreduce

import (
	"fmt"

	"repro/internal/topo"
)

// ClusterModel prices a MapReduce job on a simulated shared-nothing
// cluster: map and reduce phases scale with node count and per-node
// processing rate; the shuffle crosses the fabric's bisection, which is
// where the Ethernet-generation experiments (E3) bite.
type ClusterModel struct {
	Nodes int
	// RecordsPerSecPerNode is the map/reduce processing rate.
	RecordsPerSecPerNode float64
	// BytesPerRecord sizes shuffle traffic.
	BytesPerRecord float64
	// Fabric is the network generation connecting the nodes.
	Fabric topo.GbE
	// BisectionFraction is the share of aggregate access bandwidth
	// available across the bisection (1.0 for full-bisection fabrics,
	// lower for oversubscribed ones).
	BisectionFraction float64
	// TaskOverheadS is the fixed scheduling overhead per wave of tasks.
	TaskOverheadS float64
}

// DefaultCluster returns a 16-node 10 GbE cluster with 2M records/s/node,
// 100-byte records, full bisection and 0.5 s of per-phase overhead.
func DefaultCluster() ClusterModel {
	return ClusterModel{
		Nodes: 16, RecordsPerSecPerNode: 2e6, BytesPerRecord: 100,
		Fabric: topo.Gen10, BisectionFraction: 1.0, TaskOverheadS: 0.5,
	}
}

// Estimate prices a job from its counters.
type Estimate struct {
	MapS     float64
	ShuffleS float64
	ReduceS  float64
	TotalS   float64
}

// Price estimates the wall-clock phases of a job with the given counters.
func (m ClusterModel) Price(c Counters) (Estimate, error) {
	if m.Nodes <= 0 || m.RecordsPerSecPerNode <= 0 {
		return Estimate{}, fmt.Errorf("mapreduce: invalid cluster model %+v", m)
	}
	var e Estimate
	rate := float64(m.Nodes) * m.RecordsPerSecPerNode
	e.MapS = float64(c.InputRecords)/rate + m.TaskOverheadS
	// Shuffle: all combined map output crosses the bisection once; with
	// random key distribution, (Nodes-1)/Nodes of it is remote.
	remote := float64(c.ShuffleRecords) * m.BytesPerRecord
	if m.Nodes > 1 {
		remote *= float64(m.Nodes-1) / float64(m.Nodes)
	} else {
		remote = 0
	}
	bisection := float64(m.Nodes) * m.Fabric.BytesPerSec() * m.BisectionFraction / 2
	if bisection > 0 {
		e.ShuffleS = remote / bisection
	}
	e.ReduceS = float64(c.ShuffleRecords)/rate + m.TaskOverheadS
	e.TotalS = e.MapS + e.ShuffleS + e.ReduceS
	return e, nil
}

// ShuffleBytes returns the network bytes the job's shuffle moves.
func (m ClusterModel) ShuffleBytes(c Counters) float64 {
	return float64(c.ShuffleRecords) * m.BytesPerRecord
}
