// Package mapreduce is a working MapReduce engine: goroutine-parallel map
// tasks, hash-partitioned shuffle with optional map-side combiners, and
// parallel reduce tasks, plus a cluster cost model that prices the same
// job on a simulated cluster (nodes × network generation). It is the
// "distributed framework" endpoint of Section IV.C.1 — the E8 experiment
// runs the same analytics through SQL, MapReduce and dataflow and compares
// the abstractions; the unit of parallelization here is an OS thread
// (goroutine), exactly the property Section IV.C.3 calls out.
package mapreduce

import (
	"fmt"
	"sort"
	"sync"
)

// Pair is one intermediate key/value record.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Mapper turns one input record into zero or more intermediate pairs via
// emit.
type Mapper[I any, K comparable, V any] func(rec I, emit func(K, V))

// Combiner folds map-side values for one key (associative+commutative).
type Combiner[V any] func(a, b V) V

// Reducer folds all values of one key into the final output.
type Reducer[K comparable, V any, O any] func(key K, vals []V) O

// Config sets the engine's parallelism.
type Config struct {
	// MapTasks is the number of parallel map workers (default 4).
	MapTasks int
	// ReduceTasks is the number of partitions / reduce workers (default 4).
	ReduceTasks int
	// Hash partitions keys; the default uses fmt-based hashing which works
	// for any comparable key. Provide a custom one for speed.
	Hash func(k any) uint64
}

func (c Config) withDefaults() Config {
	if c.MapTasks <= 0 {
		c.MapTasks = 4
	}
	if c.ReduceTasks <= 0 {
		c.ReduceTasks = 4
	}
	if c.Hash == nil {
		c.Hash = func(k any) uint64 { return fnv64(fmt.Sprint(k)) }
	}
	return c
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Counters reports job-level data movement — the numbers the E8
// abstraction comparison tabulates.
type Counters struct {
	InputRecords   int
	MapOutRecords  int
	ShuffleRecords int // after combining: what actually crosses the network
	ReduceGroups   int
	MapTasks       int
	ReduceTasks    int
}

// Run executes a MapReduce job in-process. combiner may be nil.
// The output map holds one entry per distinct key.
func Run[I any, K comparable, V any, O any](
	cfg Config, input []I,
	mapper Mapper[I, K, V],
	combiner Combiner[V],
	reducer Reducer[K, V, O],
) (map[K]O, Counters, error) {
	if mapper == nil || reducer == nil {
		return nil, Counters{}, fmt.Errorf("mapreduce: mapper and reducer are required")
	}
	cfg = cfg.withDefaults()
	ctr := Counters{InputRecords: len(input), MapTasks: cfg.MapTasks, ReduceTasks: cfg.ReduceTasks}

	// ---- Map phase: split input into MapTasks slices, run in parallel.
	// Each map task partitions its output by reduce task, combining
	// map-side when a combiner is given.
	type partition map[K][]V
	taskParts := make([][]partition, cfg.MapTasks) // [mapTask][reduceTask]
	mapOut := make([]int, cfg.MapTasks)
	var wg sync.WaitGroup
	chunk := (len(input) + cfg.MapTasks - 1) / cfg.MapTasks
	for t := 0; t < cfg.MapTasks; t++ {
		lo := t * chunk
		hi := lo + chunk
		if lo > len(input) {
			lo = len(input)
		}
		if hi > len(input) {
			hi = len(input)
		}
		parts := make([]partition, cfg.ReduceTasks)
		for i := range parts {
			parts[i] = partition{}
		}
		taskParts[t] = parts
		wg.Add(1)
		go func(t int, recs []I, parts []partition) {
			defer wg.Done()
			emit := func(k K, v V) {
				mapOut[t]++
				p := parts[int(cfg.Hash(k)%uint64(cfg.ReduceTasks))]
				if combiner != nil {
					if prev, ok := p[k]; ok {
						p[k] = []V{combiner(prev[0], v)}
						return
					}
					p[k] = []V{v}
					return
				}
				p[k] = append(p[k], v)
			}
			for _, r := range recs {
				mapper(r, emit)
			}
		}(t, input[lo:hi], parts)
	}
	wg.Wait()
	for _, n := range mapOut {
		ctr.MapOutRecords += n
	}

	// ---- Shuffle: merge per-map partitions into per-reduce groups.
	merged := make([]partition, cfg.ReduceTasks)
	for r := range merged {
		merged[r] = partition{}
	}
	for _, parts := range taskParts {
		for r, p := range parts {
			for k, vs := range p {
				ctr.ShuffleRecords += len(vs)
				merged[r][k] = append(merged[r][k], vs...)
			}
		}
	}

	// ---- Reduce phase: one worker per partition.
	outs := make([]map[K]O, cfg.ReduceTasks)
	for r := 0; r < cfg.ReduceTasks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out := make(map[K]O, len(merged[r]))
			for k, vs := range merged[r] {
				out[k] = reducer(k, vs)
			}
			outs[r] = out
		}(r)
	}
	wg.Wait()

	final := map[K]O{}
	for _, out := range outs {
		for k, v := range out {
			final[k] = v
		}
	}
	ctr.ReduceGroups = len(final)
	return final, ctr, nil
}

// SortedKeys returns the output's keys in sorted order for deterministic
// rendering (keys must be ordered via the less function).
func SortedKeys[K comparable, O any](m map[K]O, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
