package mapreduce

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/topo"
	"repro/internal/workload"
)

func wordCount(t *testing.T, cfg Config, docs []workload.Doc, combine bool) (map[string]int, Counters) {
	t.Helper()
	var comb Combiner[int]
	if combine {
		comb = func(a, b int) int { return a + b }
	}
	out, ctr, err := Run(cfg, docs,
		func(d workload.Doc, emit func(string, int)) {
			for _, w := range d.Words {
				emit(w, 1)
			}
		},
		comb,
		func(_ string, vals []int) int {
			t := 0
			for _, v := range vals {
				t += v
			}
			return t
		})
	if err != nil {
		t.Fatal(err)
	}
	return out, ctr
}

func TestWordCountMatchesSequential(t *testing.T) {
	docs := workload.Corpus(5, 50, 100, 300)
	got, _ := wordCount(t, Config{MapTasks: 8, ReduceTasks: 4}, docs, false)
	want := map[string]int{}
	for _, d := range docs {
		for _, w := range d.Words {
			want[w]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct words: got %d want %d", len(got), len(want))
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestCombinerPreservesResultsCutsShuffle(t *testing.T) {
	docs := workload.Corpus(5, 50, 100, 300)
	plain, cp := wordCount(t, Config{MapTasks: 8, ReduceTasks: 4}, docs, false)
	combined, cc := wordCount(t, Config{MapTasks: 8, ReduceTasks: 4}, docs, true)
	if len(plain) != len(combined) {
		t.Fatal("combiner changed result cardinality")
	}
	for w, n := range plain {
		if combined[w] != n {
			t.Fatalf("combiner changed count[%q]: %d vs %d", w, combined[w], n)
		}
	}
	if cc.ShuffleRecords >= cp.ShuffleRecords {
		t.Fatalf("combiner should cut shuffle: %d vs %d", cc.ShuffleRecords, cp.ShuffleRecords)
	}
	if cc.MapOutRecords != cp.MapOutRecords {
		t.Fatalf("map output records must not change: %d vs %d", cc.MapOutRecords, cp.MapOutRecords)
	}
}

func TestParallelismInvariance(t *testing.T) {
	// The result must not depend on task counts.
	docs := workload.Corpus(11, 30, 80, 200)
	configs := []Config{
		{MapTasks: 1, ReduceTasks: 1},
		{MapTasks: 3, ReduceTasks: 2},
		{MapTasks: 16, ReduceTasks: 8},
	}
	var ref map[string]int
	for i, cfg := range configs {
		out, _ := wordCount(t, cfg, docs, true)
		if i == 0 {
			ref = out
			continue
		}
		if len(out) != len(ref) {
			t.Fatalf("config %d: cardinality %d != %d", i, len(out), len(ref))
		}
		for k, v := range ref {
			if out[k] != v {
				t.Fatalf("config %d: %q = %d, want %d", i, k, out[k], v)
			}
		}
	}
}

func TestNumericAggregation(t *testing.T) {
	recs := workload.RecordStream(3, 10000, 64, 1.0)
	out, ctr, err := Run(Config{MapTasks: 4, ReduceTasks: 4}, recs,
		func(r workload.Record, emit func(string, float64)) { emit(r.Key, r.Value) },
		func(a, b float64) float64 { return a + b },
		func(_ string, vals []float64) float64 {
			t := 0.0
			for _, v := range vals {
				t += v
			}
			return t
		})
	if err != nil {
		t.Fatal(err)
	}
	if ctr.InputRecords != 10000 {
		t.Fatalf("input = %d", ctr.InputRecords)
	}
	want := map[string]float64{}
	for _, r := range recs {
		want[r.Key] += r.Value
	}
	for k, v := range want {
		if diff := out[k] - v; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("sum[%s] = %v, want %v", k, out[k], v)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run[int, int, int, int](Config{}, nil, nil, nil, nil); err == nil {
		t.Fatal("expected mapper/reducer validation error")
	}
}

func TestEmptyInput(t *testing.T) {
	out, ctr, err := Run(Config{}, []int{},
		func(i int, emit func(int, int)) { emit(i, 1) },
		nil,
		func(_ int, vs []int) int { return len(vs) })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || ctr.MapOutRecords != 0 {
		t.Fatalf("empty input gave %v %v", out, ctr)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m, func(a, b string) bool { return a < b })
	if strings.Join(keys, "") != "abc" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestDeterministicAcrossRunsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		docs := workload.Corpus(seed%100, 10, 40, 100)
		a, _ := wordCount(t, Config{MapTasks: 4, ReduceTasks: 3}, docs, true)
		b, _ := wordCount(t, Config{MapTasks: 4, ReduceTasks: 3}, docs, true)
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterPriceFasterFabricCutsShuffle(t *testing.T) {
	ctr := Counters{InputRecords: 10_000_000, MapOutRecords: 10_000_000, ShuffleRecords: 10_000_000}
	m := DefaultCluster()
	m.Fabric = topo.Gen10
	slow, err := m.Price(ctr)
	if err != nil {
		t.Fatal(err)
	}
	m.Fabric = topo.Gen100
	fast, err := m.Price(ctr)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ShuffleS >= slow.ShuffleS {
		t.Fatalf("100GbE shuffle (%v) should beat 10GbE (%v)", fast.ShuffleS, slow.ShuffleS)
	}
	if fast.MapS != slow.MapS {
		t.Fatal("fabric must not affect map phase")
	}
}

func TestClusterPriceSingleNodeNoShuffle(t *testing.T) {
	m := DefaultCluster()
	m.Nodes = 1
	e, err := m.Price(Counters{InputRecords: 1000, ShuffleRecords: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if e.ShuffleS != 0 {
		t.Fatalf("single node shuffle = %v, want 0 (all local)", e.ShuffleS)
	}
}

func TestClusterPriceValidation(t *testing.T) {
	m := ClusterModel{}
	if _, err := m.Price(Counters{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestMoreNodesCutMapTime(t *testing.T) {
	ctr := Counters{InputRecords: 100_000_000, ShuffleRecords: 1_000_000}
	small := DefaultCluster()
	small.Nodes = 4
	big := DefaultCluster()
	big.Nodes = 64
	se, _ := small.Price(ctr)
	be, _ := big.Price(ctr)
	if be.MapS >= se.MapS {
		t.Fatalf("64 nodes map (%v) should beat 4 nodes (%v)", be.MapS, se.MapS)
	}
}
