// Package memtier models the storage/memory hierarchy that Recommendation
// 5 says future Big-Data processors must integrate ("new non-volatile
// memories and I/O interfaces"). A hierarchy assigns a data footprint to
// ordered tiers (DRAM, storage-class NVM, NVMe flash, disk); accesses
// follow a concentration curve (the 80/20 skew of analytics working sets),
// so the hottest bytes land in the fastest tier. The model answers the
// economic question behind the recommendation: how much does a latency
// target cost with and without an NVM tier between DRAM and flash?
package memtier

import (
	"fmt"
	"math"
)

// Tier is one level of the hierarchy.
type Tier struct {
	Name string
	// LatencyNS is the average access latency.
	LatencyNS float64
	// GBs is sustained bandwidth in GB/s.
	GBs float64
	// EURPerGB is the acquisition cost.
	EURPerGB float64
}

// The 2016-era catalog.
var (
	DRAM = Tier{Name: "dram", LatencyNS: 80, GBs: 100, EURPerGB: 8.0}
	// NVM is storage-class memory (3D XPoint-class): between DRAM and
	// flash on every axis.
	NVM  = Tier{Name: "nvm", LatencyNS: 350, GBs: 15, EURPerGB: 3.0}
	SSD  = Tier{Name: "ssd", LatencyNS: 80e3, GBs: 3, EURPerGB: 0.5}
	Disk = Tier{Name: "disk", LatencyNS: 8e6, GBs: 0.2, EURPerGB: 0.03}
)

// Level is a tier with an allocated capacity.
type Level struct {
	Tier Tier
	GB   float64
}

// Hierarchy is an ordered set of levels, fastest first, plus the access
// skew of the workload.
type Hierarchy struct {
	Levels []Level
	// SkewTheta parameterizes the concentration curve: the hottest
	// fraction x of the footprint absorbs x^θ of accesses (θ≈0.14
	// reproduces the 80/20 rule; θ=1 is uniform).
	SkewTheta float64
}

// NewHierarchy builds a hierarchy with the default analytics skew.
func NewHierarchy(levels ...Level) *Hierarchy {
	return &Hierarchy{Levels: levels, SkewTheta: thetaFor8020}
}

// thetaFor8020 solves 0.2^θ = 0.8.
var thetaFor8020 = math.Log(0.8) / math.Log(0.2)

// Validate checks ordering (strictly faster above) and capacities.
func (h *Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("memtier: empty hierarchy")
	}
	if h.SkewTheta <= 0 || h.SkewTheta > 1 {
		return fmt.Errorf("memtier: skew theta %v out of (0, 1]", h.SkewTheta)
	}
	for i, l := range h.Levels {
		if l.GB < 0 {
			return fmt.Errorf("memtier: level %d negative capacity", i)
		}
		if i > 0 && l.Tier.LatencyNS <= h.Levels[i-1].Tier.LatencyNS {
			return fmt.Errorf("memtier: level %d (%s) not slower than level %d (%s)",
				i, l.Tier.Name, i-1, h.Levels[i-1].Tier.Name)
		}
	}
	if h.CapacityGB() <= 0 {
		// Every level at zero capacity: no footprint can be placed, and
		// the concentration curve would divide by zero.
		return fmt.Errorf("memtier: hierarchy has zero total capacity")
	}
	return nil
}

// CapacityGB sums level capacities.
func (h *Hierarchy) CapacityGB() float64 {
	t := 0.0
	for _, l := range h.Levels {
		t += l.GB
	}
	return t
}

// CostEUR prices the hierarchy.
func (h *Hierarchy) CostEUR() float64 {
	t := 0.0
	for _, l := range h.Levels {
		t += l.GB * l.Tier.EURPerGB
	}
	return t
}

// hitFraction returns the share of accesses landing in the hottest gb
// bytes of a footprint.
func (h *Hierarchy) hitFraction(gb, footprint float64) float64 {
	if gb <= 0 {
		return 0
	}
	if gb >= footprint {
		return 1
	}
	return math.Pow(gb/footprint, h.SkewTheta)
}

// AvgLatencyNS returns the expected access latency for a footprint placed
// hottest-first down the hierarchy. Footprint beyond total capacity is an
// error (data must live somewhere).
func (h *Hierarchy) AvgLatencyNS(footprintGB float64) (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	if footprintGB <= 0 {
		return 0, fmt.Errorf("memtier: non-positive footprint")
	}
	if h.CapacityGB()+1e-9 < footprintGB {
		return 0, fmt.Errorf("memtier: footprint %.0f GB exceeds capacity %.0f GB",
			footprintGB, h.CapacityGB())
	}
	total := 0.0
	cumGB := 0.0
	cumHit := 0.0
	for _, l := range h.Levels {
		upper := cumGB + l.GB
		if upper > footprintGB {
			upper = footprintGB
		}
		hitUpper := h.hitFraction(upper, footprintGB)
		share := hitUpper - cumHit
		total += share * l.Tier.LatencyNS
		cumGB = upper
		cumHit = hitUpper
		if cumGB >= footprintGB {
			break
		}
	}
	return total, nil
}

// Config is a candidate capacity split for CheapestMeeting.
type Config struct {
	DRAMGB, NVMGB, SSDGB float64
	AvgLatencyNS         float64
	CostEUR              float64
}

// CheapestMeeting searches DRAM/NVM/SSD splits for the cheapest hierarchy
// whose average latency meets the target for the footprint. useNVM toggles
// the middle tier — the Recommendation 5 comparison. The search sweeps
// DRAM and NVM capacities on a geometric grid; the SSD tier absorbs the
// remainder. ok is false if no configuration meets the target.
func CheapestMeeting(footprintGB, targetNS float64, useNVM bool) (Config, bool) {
	best := Config{CostEUR: math.Inf(1)}
	found := false
	grid := geometricGrid(footprintGB)
	nvmGrid := grid
	if !useNVM {
		nvmGrid = []float64{0}
	}
	for _, dram := range grid {
		for _, nvm := range nvmGrid {
			if dram+nvm > footprintGB {
				continue
			}
			h := NewHierarchy(
				Level{Tier: DRAM, GB: dram},
				Level{Tier: NVM, GB: nvm},
				Level{Tier: SSD, GB: footprintGB - dram - nvm},
			)
			lat, err := h.AvgLatencyNS(footprintGB)
			if err != nil {
				continue
			}
			if lat > targetNS {
				continue
			}
			cost := h.CostEUR()
			if cost < best.CostEUR {
				best = Config{
					DRAMGB: dram, NVMGB: nvm, SSDGB: footprintGB - dram - nvm,
					AvgLatencyNS: lat, CostEUR: cost,
				}
				found = true
			}
		}
	}
	return best, found
}

// geometricGrid returns candidate capacities: 0 plus a geometric sweep up
// to the footprint.
func geometricGrid(footprintGB float64) []float64 {
	out := []float64{0}
	for c := footprintGB / 1024; c <= footprintGB; c *= math.Sqrt2 {
		out = append(out, c)
	}
	return append(out, footprintGB)
}
