package memtier

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidateOrdering(t *testing.T) {
	bad := NewHierarchy(Level{Tier: SSD, GB: 100}, Level{Tier: DRAM, GB: 100})
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-order tiers must fail")
	}
	good := NewHierarchy(Level{Tier: DRAM, GB: 100}, Level{Tier: NVM, GB: 100})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Hierarchy{SkewTheta: 0.5}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty hierarchy must fail")
	}
}

func TestSkew8020(t *testing.T) {
	h := NewHierarchy(Level{Tier: DRAM, GB: 100})
	// The hottest 20% of data absorbs ~80% of accesses.
	if got := h.hitFraction(20, 100); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("hit(20%%) = %v, want 0.8", got)
	}
	if h.hitFraction(100, 100) != 1 || h.hitFraction(0, 100) != 0 {
		t.Fatal("boundary conditions broken")
	}
}

func TestAllDRAMLatencyIsDRAM(t *testing.T) {
	h := NewHierarchy(Level{Tier: DRAM, GB: 1000})
	lat, err := h.AvgLatencyNS(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-DRAM.LatencyNS) > 1e-9 {
		t.Fatalf("all-DRAM latency = %v", lat)
	}
}

func TestFootprintBeyondCapacityErrors(t *testing.T) {
	h := NewHierarchy(Level{Tier: DRAM, GB: 10})
	if _, err := h.AvgLatencyNS(100); err == nil {
		t.Fatal("oversized footprint must error")
	}
	if _, err := h.AvgLatencyNS(0); err == nil {
		t.Fatal("zero footprint must error")
	}
}

func TestMoreDRAMNeverSlower(t *testing.T) {
	footprint := 10000.0
	prev := math.Inf(1)
	for _, dram := range []float64{10, 100, 1000, 10000} {
		h := NewHierarchy(
			Level{Tier: DRAM, GB: dram},
			Level{Tier: SSD, GB: footprint},
		)
		lat, err := h.AvgLatencyNS(footprint)
		if err != nil {
			t.Fatal(err)
		}
		if lat > prev+1e-9 {
			t.Fatalf("latency rose with more DRAM: %v > %v", lat, prev)
		}
		prev = lat
	}
}

func TestNVMTierCutsLatencyAtFixedBudget(t *testing.T) {
	// Same cost, two designs: DRAM+SSD vs smaller DRAM + NVM + SSD. The
	// NVM design absorbs the warm tail at 350 ns instead of 80 µs.
	footprint := 10000.0
	noNVM := NewHierarchy(
		Level{Tier: DRAM, GB: 500},
		Level{Tier: SSD, GB: footprint},
	)
	// Shift 250 GB of DRAM budget (≈2000 EUR) into ~667 GB of NVM.
	withNVM := NewHierarchy(
		Level{Tier: DRAM, GB: 250},
		Level{Tier: NVM, GB: 667},
		Level{Tier: SSD, GB: footprint},
	)
	if withNVM.CostEUR() > noNVM.CostEUR()+10 {
		t.Fatalf("budget mismatch: %v vs %v", withNVM.CostEUR(), noNVM.CostEUR())
	}
	l0, err := noNVM.AvgLatencyNS(footprint)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := withNVM.AvgLatencyNS(footprint)
	if err != nil {
		t.Fatal(err)
	}
	if l1 >= l0 {
		t.Fatalf("NVM tier should cut latency at equal budget: %v vs %v", l1, l0)
	}
}

func TestCheapestMeetingNVMWins(t *testing.T) {
	footprint := 10000.0
	target := 2000.0 // 2 µs average
	with, ok := CheapestMeeting(footprint, target, true)
	if !ok {
		t.Fatal("no NVM configuration meets target")
	}
	without, ok := CheapestMeeting(footprint, target, false)
	if !ok {
		t.Fatal("no DRAM+SSD configuration meets target")
	}
	if with.CostEUR >= without.CostEUR {
		t.Fatalf("NVM design (%v EUR) should undercut DRAM-only (%v EUR)", with.CostEUR, without.CostEUR)
	}
	if with.AvgLatencyNS > target || without.AvgLatencyNS > target {
		t.Fatal("returned configs must meet the target")
	}
	if with.NVMGB <= 0 {
		t.Fatal("the winning NVM config should actually use NVM")
	}
}

func TestCheapestMeetingImpossibleTarget(t *testing.T) {
	if _, ok := CheapestMeeting(1000, 10, true); ok {
		t.Fatal("10 ns average is below DRAM latency; must be infeasible")
	}
}

func TestLatencyMonotoneInTargetProperty(t *testing.T) {
	// Cheapest cost is non-increasing as the latency target relaxes.
	f := func(seed uint8) bool {
		footprint := 2000.0 + float64(seed)*50
		prevCost := math.Inf(1)
		for _, target := range []float64{500, 2000, 10000, 40000} {
			cfg, ok := CheapestMeeting(footprint, target, true)
			if !ok {
				continue
			}
			if cfg.CostEUR > prevCost+1e-6 {
				return false
			}
			prevCost = cfg.CostEUR
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateZeroCapacity(t *testing.T) {
	// All-zero levels pass the per-level checks but leave the
	// concentration curve with nowhere to place a footprint.
	zero := NewHierarchy(Level{Tier: DRAM, GB: 0}, Level{Tier: SSD, GB: 0})
	if err := zero.Validate(); err == nil {
		t.Fatal("zero-total-capacity hierarchy must fail validation")
	}
	if _, err := zero.AvgLatencyNS(10); err == nil {
		t.Fatal("AvgLatencyNS over a zero-capacity hierarchy must error")
	}
}

func TestAllHotFootprint(t *testing.T) {
	// Footprint fits entirely in the fastest level: every access is hot
	// and the slower tiers contribute nothing.
	h := NewHierarchy(Level{Tier: DRAM, GB: 100}, Level{Tier: SSD, GB: 1000})
	lat, err := h.AvgLatencyNS(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-DRAM.LatencyNS) > 1e-9 {
		t.Fatalf("all-hot latency = %v, want %v", lat, DRAM.LatencyNS)
	}
}

func TestAllColdFootprint(t *testing.T) {
	// Fast levels at zero capacity: the concentration curve's hot
	// fraction is zero (no division by zero) and everything lands cold.
	h := NewHierarchy(
		Level{Tier: DRAM, GB: 0},
		Level{Tier: NVM, GB: 0},
		Level{Tier: SSD, GB: 1000},
	)
	lat, err := h.AvgLatencyNS(1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat-SSD.LatencyNS) > 1e-9 {
		t.Fatalf("all-cold latency = %v, want %v", lat, SSD.LatencyNS)
	}
}

func TestSpillDeviceTiers(t *testing.T) {
	for _, name := range SpillTiers {
		d, err := NewSpillDevice(name)
		if err != nil {
			t.Fatalf("NewSpillDevice(%q): %v", name, err)
		}
		if d.Tier() != name {
			t.Fatalf("Tier() = %q, want %q", d.Tier(), name)
		}
		if d.WriteSeconds(0) != 0 || d.ReadSeconds(0) != 0 || d.AccessJoules(0) != 0 {
			t.Fatal("zero bytes must cost nothing")
		}
		w := d.WriteSeconds(1 << 20)
		if w <= 0 || w != d.ReadSeconds(1<<20) {
			t.Fatalf("transfer pricing broken for %q: %v", name, w)
		}
		if d.AccessJoules(1<<20) <= 0 {
			t.Fatalf("energy pricing broken for %q", name)
		}
	}
	if _, err := NewSpillDevice("dram"); err == nil {
		t.Fatal("dram is not a spill tier")
	}
	if _, err := NewSpillDevice("tape"); err == nil {
		t.Fatal("unknown tier must error")
	}
}

func TestSpillDeviceRejectsDegenerateTier(t *testing.T) {
	if _, err := newSpillDevice(Tier{Name: "broken", LatencyNS: 100, GBs: 0}); err == nil {
		t.Fatal("zero bandwidth must error")
	}
	if _, err := newSpillDevice(Tier{Name: "broken", LatencyNS: 0, GBs: 1}); err == nil {
		t.Fatal("zero latency must error")
	}
}

func TestSpillSlowerTierCostsMore(t *testing.T) {
	// The tier ordering must survive into spill pricing: a megabyte to
	// disk costs strictly more time and energy than to nvm.
	prevT, prevJ := 0.0, 0.0
	for _, name := range SpillTiers {
		d, err := NewSpillDevice(name)
		if err != nil {
			t.Fatal(err)
		}
		w, j := d.WriteSeconds(1<<20), d.AccessJoules(1<<20)
		if w <= prevT || j <= prevJ {
			t.Fatalf("%q not strictly pricier than faster tier", name)
		}
		prevT, prevJ = w, j
	}
}
