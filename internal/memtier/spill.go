package memtier

import (
	"fmt"
	"strings"
)

// SpillDevice prices the I/O of spilling operator state (hash-join build
// partitions, partial-aggregate generations, sort runs) to one tier of
// the catalog — the out-of-core seam of Recommendation 5: once datasets
// exceed the memory budget, the storage hierarchy's latency, bandwidth
// and energy shape the plan. It is the spill-side analogue of how the
// exec layer prices PCIe offload: a transfer of n bytes costs the tier's
// access latency plus n over its sustained bandwidth, and an energy
// charge from a per-tier access-cost table.
type SpillDevice struct {
	tier Tier
	// joulesPerByte is the per-byte access energy of the tier's medium.
	joulesPerByte float64
}

// SpillTiers lists the tiers NewSpillDevice accepts, fastest first.
// DRAM is deliberately absent: spilling to the tier the budget models is
// a no-op, not an out-of-core strategy.
var SpillTiers = []string{"nvm", "ssd", "disk"}

// spillEnergy is the modeled access energy per byte moved to/from each
// tier (media write/read plus controller overheads, coarse 2016-era
// figures: SCM ~0.2 nJ/B, NAND flash ~2 nJ/B, spinning disk ~10 nJ/B).
var spillEnergy = map[string]float64{
	"nvm":  0.2e-9,
	"ssd":  2e-9,
	"disk": 10e-9,
}

// NewSpillDevice builds a spill device over the named catalog tier. The
// tier's latency and bandwidth must be positive — a zero-bandwidth tier
// would make every transfer divide by zero — so configuration errors
// surface at engine construction, not mid-spill.
func NewSpillDevice(name string) (*SpillDevice, error) {
	var tier Tier
	switch strings.ToLower(name) {
	case "nvm":
		tier = NVM
	case "ssd":
		tier = SSD
	case "disk":
		tier = Disk
	default:
		return nil, fmt.Errorf("memtier: unknown spill tier %q (have %s)", name, strings.Join(SpillTiers, ", "))
	}
	return newSpillDevice(tier)
}

// newSpillDevice validates an explicit tier (exported entry points all
// come from the catalog, but the guard keeps custom tiers honest too).
func newSpillDevice(tier Tier) (*SpillDevice, error) {
	if tier.GBs <= 0 {
		return nil, fmt.Errorf("memtier: spill tier %q has non-positive bandwidth", tier.Name)
	}
	if tier.LatencyNS <= 0 {
		return nil, fmt.Errorf("memtier: spill tier %q has non-positive latency", tier.Name)
	}
	return &SpillDevice{tier: tier, joulesPerByte: spillEnergy[tier.Name]}, nil
}

// Tier returns the tier name the device prices against.
func (d *SpillDevice) Tier() string { return d.tier.Name }

// transferSeconds is one access of n bytes: the tier's access latency
// plus serialization at its sustained bandwidth.
func (d *SpillDevice) transferSeconds(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.tier.LatencyNS*1e-9 + bytes/(d.tier.GBs*1e9)
}

// WriteSeconds prices spilling bytes out to the tier.
func (d *SpillDevice) WriteSeconds(bytes float64) float64 { return d.transferSeconds(bytes) }

// ReadSeconds prices reading spilled bytes back.
func (d *SpillDevice) ReadSeconds(bytes float64) float64 { return d.transferSeconds(bytes) }

// AccessJoules prices the energy of moving bytes to or from the tier.
func (d *SpillDevice) AccessJoules(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes * d.joulesPerByte
}
