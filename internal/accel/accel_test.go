package accel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// normalize is the canonical example program: scale, clamp negative
// values away, and sum.
func normalize() *Program {
	return &Program{
		Name: "normalize",
		Stages: []Stage{
			MapE(Bin{Op: Mul, L: X{}, R: Const(0.5)}),
			FilterE(X{}), // keep x > 0
			ReduceE(SumReduce),
		},
	}
}

func randVec(seed uint64, n int) []float64 {
	rng := sim.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Range(-1, 1)
	}
	return out
}

func TestExprEvalAndOps(t *testing.T) {
	e := Bin{Op: Add, L: Un{Op: Sq, E: X{}}, R: Const(1)} // x² + 1
	if got := e.Eval(3); got != 10 {
		t.Fatalf("eval = %v", got)
	}
	if got := e.Ops(); got != 2 {
		t.Fatalf("ops = %d, want 2", got)
	}
	if e.String() != "(sq(x) + 1)" {
		t.Fatalf("string = %q", e.String())
	}
}

func TestBinOps(t *testing.T) {
	cases := []struct {
		op   BinOp
		want float64
	}{
		{Add, 7}, {Sub, 3}, {Mul, 10}, {Div, 2.5}, {Min, 2}, {Max, 5},
	}
	for _, c := range cases {
		e := Bin{Op: c.op, L: Const(5), R: Const(2)}
		if got := e.Eval(0); got != c.want {
			t.Fatalf("%v: got %v want %v", c.op, got, c.want)
		}
	}
}

func TestUnOps(t *testing.T) {
	if (Un{Op: Neg, E: X{}}).Eval(3) != -3 {
		t.Fatal("neg")
	}
	if (Un{Op: Abs, E: X{}}).Eval(-3) != 3 {
		t.Fatal("abs")
	}
	if (Un{Op: Sq, E: X{}}).Eval(-3) != 9 {
		t.Fatal("sq")
	}
}

func TestProgramValidation(t *testing.T) {
	bad := &Program{Name: "empty"}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty program must not validate")
	}
	misplaced := &Program{Name: "mid-reduce", Stages: []Stage{ReduceE(SumReduce), MapE(X{})}}
	if err := misplaced.Validate(); err == nil {
		t.Fatal("mid-pipeline reduce must not validate")
	}
	nilExpr := &Program{Name: "nil", Stages: []Stage{{Kind: MapStage}}}
	if err := nilExpr.Validate(); err == nil {
		t.Fatal("nil expression must not validate")
	}
	if err := normalize().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunReferenceSemantics(t *testing.T) {
	p := normalize()
	in := []float64{2, -4, 6}
	res, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsScalar {
		t.Fatal("reduced program must return a scalar")
	}
	// map: 1, -2, 3 ; filter: 1, 3 ; sum: 4
	if res.Scalar != 4 {
		t.Fatalf("scalar = %v, want 4", res.Scalar)
	}
	if sel := res.Selectivity[1]; math.Abs(sel-2.0/3) > 1e-12 {
		t.Fatalf("selectivity = %v, want 2/3", sel)
	}
	// Input untouched.
	if in[1] != -4 {
		t.Fatal("input mutated")
	}
}

func TestRunVectorProgram(t *testing.T) {
	p := &Program{Name: "vec", Stages: []Stage{MapE(Bin{Op: Add, L: X{}, R: Const(1)})}}
	res, err := p.Run([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsScalar || len(res.Vec) != 2 || res.Vec[0] != 2 || res.Vec[1] != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestReduceKinds(t *testing.T) {
	xs := []float64{3, 1, 2}
	if reduce(SumReduce, xs) != 6 {
		t.Fatal("sum")
	}
	if reduce(MinReduce, xs) != 1 {
		t.Fatal("min")
	}
	if reduce(MaxReduce, xs) != 3 {
		t.Fatal("max")
	}
	if reduce(CountReduce, xs) != 3 {
		t.Fatal("count")
	}
	if !math.IsInf(reduce(MinReduce, nil), 1) {
		t.Fatal("empty min must be +Inf")
	}
}

func TestEstimatesAgreeOnSemanticsDivergeOnCost(t *testing.T) {
	// The E9 claim in miniature: identical results, different costs.
	p := normalize()
	in := randVec(1, 1<<20)
	res, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for _, b := range DefaultBackends() {
		est, err := b.Estimate(p, len(in), res.Selectivity)
		if err != nil {
			t.Fatal(err)
		}
		if est.Seconds <= 0 {
			t.Fatalf("%s: non-positive time", est.Backend)
		}
		times = append(times, est.Seconds)
	}
	// All three must differ pairwise by more than 5%.
	for i := 0; i < len(times); i++ {
		for j := i + 1; j < len(times); j++ {
			if math.Abs(times[i]-times[j]) < 0.05*times[i] {
				t.Fatalf("backends %d and %d suspiciously close: %v vs %v", i, j, times[i], times[j])
			}
		}
	}
}

func TestGPUPaysLaunchAndTransfer(t *testing.T) {
	p := &Program{Name: "tiny", Stages: []Stage{MapE(Bin{Op: Mul, L: X{}, R: Const(2)})}}
	gpu := NewGPU()
	cpu := NewCPU()
	// At tiny sizes the CPU wins (no launch/PCIe overhead).
	gs, _ := gpu.Estimate(p, 64, nil)
	cs, _ := cpu.Estimate(p, 64, nil)
	if gs.Seconds <= cs.Seconds {
		t.Fatalf("tiny input: GPU (%v) should lose to CPU (%v)", gs.Seconds, cs.Seconds)
	}
}

func TestFPGAFusionBeatsStageAtATimeOnDeepPipelines(t *testing.T) {
	// A deep map pipeline is bandwidth-bound stage-at-a-time but single-
	// pass on the FPGA; at steady state (amortized reconfig) FPGA wins.
	var stages []Stage
	for i := 0; i < 12; i++ {
		stages = append(stages, MapE(Bin{Op: Add, L: X{}, R: Const(1)}))
	}
	p := &Program{Name: "deep", Stages: stages}
	n := 1 << 24
	fe, _ := NewFPGA().Estimate(p, n, nil)
	ce, _ := NewCPU().Estimate(p, n, nil)
	ge, _ := NewGPU().Estimate(p, n, nil)
	if fe.Seconds >= ce.Seconds || fe.Seconds >= ge.Seconds {
		t.Fatalf("fused FPGA (%v) should beat CPU (%v) and GPU (%v) on deep pipelines",
			fe.Seconds, ce.Seconds, ge.Seconds)
	}
	if fe.SetupSeconds <= 0 {
		t.Fatal("FPGA must carry a reconfiguration setup cost")
	}
}

func TestTunerAmortizationShiftsChoice(t *testing.T) {
	var stages []Stage
	for i := 0; i < 12; i++ {
		stages = append(stages, MapE(Bin{Op: Add, L: X{}, R: Const(1)}))
	}
	p := &Program{Name: "deep", Stages: stages}
	tuner := NewTuner()
	n := 1 << 24
	// Single run: the 100 ms reconfiguration disqualifies the FPGA.
	once, err := tuner.Choose(p, n, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if once.Backend.Style == Pipeline {
		t.Fatal("single run should not pick FPGA (reconfig dominates)")
	}
	// Thousands of runs amortize it away.
	many, err := tuner.Choose(p, n, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if many.Backend.Style != Pipeline {
		t.Fatalf("steady-state deep pipeline should pick FPGA, got %v", many.Backend.Style)
	}
}

func TestTunerPicksCPUForSmallInputs(t *testing.T) {
	p := normalize()
	got, err := NewTuner().Choose(p, 128, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Backend.Style != SIMD {
		t.Fatalf("tiny input should stay on CPU, got %v", got.Backend.Style)
	}
}

func TestPerformancePortabilityBounds(t *testing.T) {
	same := []Estimate{{Seconds: 1}, {Seconds: 1}, {Seconds: 1}}
	if pp := PerformancePortability(same); math.Abs(pp-1) > 1e-12 {
		t.Fatalf("identical backends PP = %v, want 1", pp)
	}
	skewed := []Estimate{{Seconds: 1}, {Seconds: 10}, {Seconds: 100}}
	pp := PerformancePortability(skewed)
	if pp <= 0 || pp >= 1 {
		t.Fatalf("skewed PP = %v, want interior", pp)
	}
	if PerformancePortability(nil) != 0 {
		t.Fatal("empty PP must be 0")
	}
}

func TestCorrectnessPortabilityProperty(t *testing.T) {
	// For any input vector, the reference result is deterministic and
	// selectivities are within [0,1] — the correctness contract every
	// backend shares.
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 1
			}
		}
		p := normalize()
		r1, err1 := p.Run(xs)
		r2, err2 := p.Run(xs)
		if err1 != nil || err2 != nil {
			return false
		}
		if r1.Scalar != r2.Scalar {
			return false
		}
		for _, s := range r1.Selectivity {
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateRejectsInvalidProgram(t *testing.T) {
	bad := &Program{Name: "bad"}
	if _, err := NewCPU().Estimate(bad, 10, nil); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := NewTuner().Choose(bad, 10, 1, nil); err == nil {
		t.Fatal("expected validation error via tuner")
	}
}

func TestProgramString(t *testing.T) {
	s := normalize().String()
	want := "normalize: map[(x * 0.5)] filter[x>0] reduce[sum]"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}
