package accel

import (
	"math"
	"testing"
	"testing/quick"
)

func deepMapProgram(depth int) *Program {
	p := &Program{Name: "deep"}
	for i := 0; i < depth; i++ {
		p.Stages = append(p.Stages, MapE(Bin{Op: Add, L: Bin{Op: Mul, L: X{}, R: Const(1.01)}, R: Const(0.5)}))
	}
	return p
}

func TestFuseCollapsesAdjacentMaps(t *testing.T) {
	p := deepMapProgram(8)
	f := p.Fuse()
	if len(f.Stages) != 1 {
		t.Fatalf("fused stages = %d, want 1", len(f.Stages))
	}
	if p.FusedStageCount() != 1 {
		t.Fatal("FusedStageCount disagrees")
	}
}

func TestFuseRespectsBarriers(t *testing.T) {
	p := &Program{Name: "mixed", Stages: []Stage{
		MapE(Bin{Op: Mul, L: X{}, R: Const(2)}),
		MapE(Bin{Op: Add, L: X{}, R: Const(1)}),
		FilterE(X{}),
		MapE(Bin{Op: Mul, L: X{}, R: Const(3)}),
		MapE(Bin{Op: Sub, L: X{}, R: Const(4)}),
		ReduceE(SumReduce),
	}}
	f := p.Fuse()
	// map+map | filter | map+map | reduce → 4 stages.
	if len(f.Stages) != 4 {
		t.Fatalf("fused stages = %d, want 4", len(f.Stages))
	}
	if f.Stages[0].Kind != MapStage || f.Stages[1].Kind != FilterStage ||
		f.Stages[2].Kind != MapStage || f.Stages[3].Kind != ReduceStage {
		t.Fatalf("fused shape wrong: %v", f)
	}
}

func TestFusePreservesSemantics(t *testing.T) {
	p := &Program{Name: "mixed", Stages: []Stage{
		MapE(Bin{Op: Mul, L: X{}, R: Const(2)}),
		MapE(Un{Op: Sq, E: X{}}),
		FilterE(Bin{Op: Sub, L: X{}, R: Const(1)}),
		MapE(Bin{Op: Add, L: X{}, R: Const(10)}),
		ReduceE(SumReduce),
	}}
	in := randVec(3, 4096)
	orig, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := p.Fuse().Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Scalar != fused.Scalar {
		t.Fatalf("fusion changed result: %v vs %v", orig.Scalar, fused.Scalar)
	}
}

func TestFuseSemanticsProperty(t *testing.T) {
	f := func(seed uint64, depth uint8) bool {
		d := int(depth%6) + 1
		p := deepMapProgram(d)
		p.Stages = append(p.Stages, ReduceE(SumReduce))
		in := randVec(seed, 512)
		a, err1 := p.Run(in)
		b, err2 := p.Fuse().Run(in)
		if err1 != nil || err2 != nil {
			return false
		}
		// Composition is exact (same operation order per element).
		return a.Scalar == b.Scalar || math.Abs(a.Scalar-b.Scalar) < 1e-9*math.Abs(a.Scalar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFusionSpeedsUpStagedBackends(t *testing.T) {
	p := deepMapProgram(10)
	n := 1 << 22
	for _, b := range []Backend{NewCPU(), NewGPU()} {
		orig, err := b.Estimate(p, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := b.Estimate(p.Fuse(), n, nil)
		if err != nil {
			t.Fatal(err)
		}
		if fused.Seconds >= orig.Seconds {
			t.Fatalf("%s: fusion did not help: %v vs %v", orig.Backend, fused.Seconds, orig.Seconds)
		}
	}
	// The FPGA pipeline already fuses spatially: estimates match closely.
	fp := NewFPGA()
	orig, _ := fp.Estimate(p, n, nil)
	fused, _ := fp.Estimate(p.Fuse(), n, nil)
	if math.Abs(orig.Seconds-fused.Seconds) > 0.1*orig.Seconds {
		t.Fatalf("FPGA estimate should be fusion-invariant: %v vs %v", orig.Seconds, fused.Seconds)
	}
}

func TestSubstituteUnknownNodePassthrough(t *testing.T) {
	// A Const contains no X: substitution is identity.
	if got := substitute(Const(5), X{}); got != Const(5) {
		t.Fatalf("const substitution = %v", got)
	}
}
