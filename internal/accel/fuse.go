package accel

// Kernel fusion — the classic optimization that separates a naive
// stage-at-a-time backend from a tuned one (and the reason FPGAs' spatial
// pipelines look so good in E9): adjacent map stages compose into a single
// pass, eliminating an intermediate memory round trip per fused pair.
// Fusion preserves semantics exactly; the ablation quantifies its effect
// per backend.

// substitute replaces every X leaf of outer with inner: the expression of
// outer∘inner.
func substitute(outer, inner Expr) Expr {
	switch e := outer.(type) {
	case X:
		return inner
	case Const:
		return e
	case Bin:
		return Bin{Op: e.Op, L: substitute(e.L, inner), R: substitute(e.R, inner)}
	case Un:
		return Un{Op: e.Op, E: substitute(e.E, inner)}
	default:
		// Unknown node kinds pass through unchanged (they cannot contain X
		// leaves this package knows how to rewrite).
		return e
	}
}

// Fuse returns a semantically identical program with adjacent map stages
// composed. Filters and reductions act as fusion barriers (a filter
// changes the value *set*, not just values; a reduction is terminal).
// Map stages immediately before a filter additionally fuse into the
// filter's predicate only when the map is pure value-scaling — which
// cannot be decided for the general IR — so this pass keeps them apart.
func (p *Program) Fuse() *Program {
	out := &Program{Name: p.Name + ".fused"}
	for _, s := range p.Stages {
		n := len(out.Stages)
		if s.Kind == MapStage && n > 0 && out.Stages[n-1].Kind == MapStage {
			prev := out.Stages[n-1]
			out.Stages[n-1] = MapE(substitute(s.E, prev.E))
			continue
		}
		out.Stages = append(out.Stages, s)
	}
	return out
}

// FusedStageCount reports how many stages fusion would leave — used by
// planners deciding whether a program is worth re-optimizing.
func (p *Program) FusedStageCount() int { return len(p.Fuse().Stages) }
