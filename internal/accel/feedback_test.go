package accel

import (
	"math"
	"testing"

	"repro/internal/kernels"
)

// TestEstimateTotalSeconds: the one-shot cost includes the full setup;
// amortized runs spread it; degenerate run counts clamp to one.
func TestEstimateTotalSeconds(t *testing.T) {
	e := Estimate{Seconds: 0.002, SetupSeconds: 0.1}
	if got := e.TotalSeconds(1); math.Abs(got-0.102) > 1e-12 {
		t.Fatalf("one-shot: %v", got)
	}
	if got := e.TotalSeconds(100); math.Abs(got-0.003) > 1e-12 {
		t.Fatalf("amortized: %v", got)
	}
	if got := e.TotalSeconds(0); math.Abs(got-0.102) > 1e-12 {
		t.Fatalf("runs<1 must clamp to one-shot: %v", got)
	}
	if got := (Estimate{Seconds: 1}).TotalSeconds(1); got != 1 {
		t.Fatalf("no setup: %v", got)
	}
}

// TestTunerUsesTotalSeconds: the tuner's amortized choice is exactly
// TotalSeconds(runs) of the winning estimate.
func TestTunerUsesTotalSeconds(t *testing.T) {
	p := &Program{Name: "x2", Stages: []Stage{MapE(Bin{Op: Mul, L: X{}, R: Const(2)})}}
	pl, err := NewTuner().Choose(p, 1<<20, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Estimate.TotalSeconds(50); math.Abs(got-pl.AmortizedSeconds) > 1e-15 {
		t.Fatalf("AmortizedSeconds %v != TotalSeconds(50) %v", pl.AmortizedSeconds, got)
	}
}

// TestSelectivityFeedbackRoundTrip: the Result.Selectivity a run
// observes must actually move the next Estimate — the tuner feedback
// loop. A highly selective filter (keep ~1/16) makes every downstream
// stage cheaper than the 0.5 planner default assumes, on every backend.
func TestSelectivityFeedbackRoundTrip(t *testing.T) {
	// keep x > 0.9375 over uniform [0, 1): ~6% pass, then a map stage
	// whose cost depends on how many elements survived.
	p := &Program{Name: "selective", Stages: []Stage{
		FilterE(Bin{Op: Sub, L: X{}, R: Const(0.9375)}),
		MapE(Bin{Op: Mul, L: X{}, R: X{}}),
	}}
	in := randVec(7, 1<<18)
	res, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Selectivity[0]
	if sel <= 0 || sel >= 0.2 {
		t.Fatalf("expected a highly selective filter, observed %v", sel)
	}
	for _, b := range DefaultBackends() {
		def, err := b.Estimate(p, len(in), nil) // planner default 0.5
		if err != nil {
			t.Fatal(err)
		}
		fed, err := b.Estimate(p, len(in), res.Selectivity)
		if err != nil {
			t.Fatal(err)
		}
		if fed.Seconds >= def.Seconds {
			t.Fatalf("%s: observed selectivity %v must lower the estimate: %v >= %v",
				def.Backend, sel, fed.Seconds, def.Seconds)
		}
	}
	// And re-observing the same program yields the same feedback: the
	// loop is stable, not a one-off.
	res2, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Selectivity[0] != sel {
		t.Fatalf("feedback must be reproducible: %v vs %v", res2.Selectivity[0], sel)
	}
}

// TestEstimateKernelStyles: the roofline-kernel pricing shares the IR
// path's style behaviour — branchy derating on wide styles, launch +
// transfer on SIMT, fill + setup on pipelines.
func TestEstimateKernelStyles(t *testing.T) {
	k := kernels.FilterDescriptor(1<<20, 0.5)
	cpu := NewCPU().EstimateKernel(k, true, 8<<20)
	gpu := NewGPU().EstimateKernel(k, true, 8<<20)
	fpga := NewFPGA().EstimateKernel(k, true, 8<<20)

	if cpu.TransferSeconds != 0 || cpu.LaunchSeconds != 0 || cpu.SetupSeconds != 0 {
		t.Fatalf("cpu pays no offload overheads: %+v", cpu)
	}
	if gpu.TransferSeconds <= 0 || gpu.LaunchSeconds <= 0 {
		t.Fatalf("gpu must price launch and transfer: %+v", gpu)
	}
	if gpu.Seconds < gpu.TransferSeconds+gpu.LaunchSeconds {
		t.Fatalf("gpu Seconds must include its overheads: %+v", gpu)
	}
	if fpga.SetupSeconds != fpgaReconfigS {
		t.Fatalf("pipeline must report reconfiguration setup: %+v", fpga)
	}
	// Branchy derating: the same kernel priced as non-branchy is never
	// slower on the wide styles.
	if nb := NewCPU().EstimateKernel(k, false, 0); nb.Seconds > cpu.Seconds {
		t.Fatalf("branchy must not be cheaper: %v > %v", nb.Seconds, cpu.Seconds)
	}
	for _, e := range []Estimate{cpu, gpu, fpga} {
		if e.Seconds <= 0 || e.EnergyJ <= 0 {
			t.Fatalf("degenerate estimate: %+v", e)
		}
	}
}
