// Package accel implements a small portable kernel IR for data-parallel
// programs — the OpenCL-style abstraction of Section IV.C.3 — together
// with backend cost models for CPU (SIMD), GPU (SIMT) and FPGA (pipeline)
// execution. Every backend computes the *same result* (correctness is
// portable); each backend's time and energy estimates differ according to
// its execution style (performance is not), which is precisely the claim
// the E9 experiment quantifies. An autotuner picks placements, standing in
// for the "dynamic scheduling and resource allocation strategies" of
// Recommendation 11 at the single-kernel level.
package accel

import "fmt"

// Expr is a scalar expression over one input element. Keeping the
// expression language first-order (no arbitrary Go closures) is what lets
// every backend both execute it and *count* it for its cost model — the
// same property real kernel IRs (OpenCL SPIR, CUDA PTX) rely on.
type Expr interface {
	// Eval computes the expression at x.
	Eval(x float64) float64
	// Ops returns the arithmetic operation count of one evaluation.
	Ops() int
	// String renders the expression.
	String() string
}

// X is the input element.
type X struct{}

// Eval implements Expr.
func (X) Eval(x float64) float64 { return x }

// Ops implements Expr.
func (X) Ops() int { return 0 }

// String implements fmt.Stringer.
func (X) String() string { return "x" }

// Const is a literal.
type Const float64

// Eval implements Expr.
func (c Const) Eval(float64) float64 { return float64(c) }

// Ops implements Expr.
func (Const) Ops() int { return 0 }

// String implements fmt.Stringer.
func (c Const) String() string { return fmt.Sprintf("%g", float64(c)) }

// BinOp is a binary operator kind.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Min
	Max
)

func (o BinOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Bin applies a binary operator to two subexpressions.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr.
func (b Bin) Eval(x float64) float64 {
	l, r := b.L.Eval(x), b.R.Eval(x)
	switch b.Op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	case Div:
		return l / r
	case Min:
		if l < r {
			return l
		}
		return r
	case Max:
		if l > r {
			return l
		}
		return r
	default:
		panic(fmt.Sprintf("accel: unknown binop %d", int(b.Op)))
	}
}

// Ops implements Expr.
func (b Bin) Ops() int { return 1 + b.L.Ops() + b.R.Ops() }

// String implements fmt.Stringer.
func (b Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnOp is a unary operator kind.
type UnOp int

// Unary operators.
const (
	Neg UnOp = iota
	Abs
	Sq // x*x, counted as one multiply
)

// Un applies a unary operator.
type Un struct {
	Op UnOp
	E  Expr
}

// Eval implements Expr.
func (u Un) Eval(x float64) float64 {
	v := u.E.Eval(x)
	switch u.Op {
	case Neg:
		return -v
	case Abs:
		if v < 0 {
			return -v
		}
		return v
	case Sq:
		return v * v
	default:
		panic(fmt.Sprintf("accel: unknown unop %d", int(u.Op)))
	}
}

// Ops implements Expr.
func (u Un) Ops() int { return 1 + u.E.Ops() }

// String implements fmt.Stringer.
func (u Un) String() string {
	name := map[UnOp]string{Neg: "neg", Abs: "abs", Sq: "sq"}[u.Op]
	return fmt.Sprintf("%s(%s)", name, u.E)
}

// ReduceKind selects the terminal reduction.
type ReduceKind int

// Reductions.
const (
	SumReduce ReduceKind = iota
	MinReduce
	MaxReduce
	CountReduce
)

func (k ReduceKind) String() string {
	switch k {
	case SumReduce:
		return "sum"
	case MinReduce:
		return "min"
	case MaxReduce:
		return "max"
	case CountReduce:
		return "count"
	default:
		return fmt.Sprintf("reduce(%d)", int(k))
	}
}

// Stage is one step of a program.
type Stage struct {
	// Exactly one of the following shapes, selected by Kind.
	Kind StageKind
	// E is the map expression or filter predicate (kept where E(x) > 0).
	E Expr
	// R is the reduction kind for Reduce stages.
	R ReduceKind
}

// StageKind discriminates stages.
type StageKind int

// Stage kinds.
const (
	MapStage StageKind = iota
	FilterStage
	ReduceStage
)

func (k StageKind) String() string {
	switch k {
	case MapStage:
		return "map"
	case FilterStage:
		return "filter"
	case ReduceStage:
		return "reduce"
	default:
		return fmt.Sprintf("stage(%d)", int(k))
	}
}

// MapE returns a map stage.
func MapE(e Expr) Stage { return Stage{Kind: MapStage, E: e} }

// FilterE returns a filter stage keeping elements where e(x) > 0.
func FilterE(e Expr) Stage { return Stage{Kind: FilterStage, E: e} }

// ReduceE returns a terminal reduction stage.
func ReduceE(k ReduceKind) Stage { return Stage{Kind: ReduceStage, R: k} }

// Program is a straight-line pipeline of stages. A Reduce, if present,
// must be last.
type Program struct {
	Name   string
	Stages []Stage
}

// Validate checks structural rules.
func (p *Program) Validate() error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("accel: program %q has no stages", p.Name)
	}
	for i, s := range p.Stages {
		switch s.Kind {
		case MapStage, FilterStage:
			if s.E == nil {
				return fmt.Errorf("accel: program %q stage %d: nil expression", p.Name, i)
			}
		case ReduceStage:
			if i != len(p.Stages)-1 {
				return fmt.Errorf("accel: program %q: reduce must be the final stage", p.Name)
			}
		default:
			return fmt.Errorf("accel: program %q stage %d: unknown kind %d", p.Name, i, int(s.Kind))
		}
	}
	return nil
}

// HasReduce reports whether the program ends in a reduction.
func (p *Program) HasReduce() bool {
	return len(p.Stages) > 0 && p.Stages[len(p.Stages)-1].Kind == ReduceStage
}

// String renders the pipeline.
func (p *Program) String() string {
	out := p.Name + ":"
	for _, s := range p.Stages {
		switch s.Kind {
		case MapStage:
			out += fmt.Sprintf(" map[%s]", s.E)
		case FilterStage:
			out += fmt.Sprintf(" filter[%s>0]", s.E)
		case ReduceStage:
			out += fmt.Sprintf(" reduce[%s]", s.R)
		}
	}
	return out
}
