package accel

import (
	"fmt"
	"math"
)

// Placement is the tuner's decision for a program.
type Placement struct {
	Backend  Backend
	Estimate Estimate
	// AmortizedSeconds includes setup spread over the planned runs.
	AmortizedSeconds float64
}

// Tuner picks the best backend per (program, input size, run count) — the
// single-kernel version of Recommendation 11's dynamic placement.
type Tuner struct {
	Backends []Backend
}

// NewTuner returns a tuner over the default CPU/GPU/FPGA trio.
func NewTuner() *Tuner { return &Tuner{Backends: DefaultBackends()} }

// Choose returns the placement minimizing amortized time per run for a
// program executed `runs` times over n-element inputs.
func (t *Tuner) Choose(p *Program, n, runs int, sel map[int]float64) (Placement, error) {
	if runs < 1 {
		runs = 1
	}
	best := Placement{AmortizedSeconds: math.Inf(1)}
	for _, b := range t.Backends {
		est, err := b.Estimate(p, n, sel)
		if err != nil {
			return Placement{}, err
		}
		amort := est.TotalSeconds(runs)
		if amort < best.AmortizedSeconds {
			best = Placement{Backend: b, Estimate: est, AmortizedSeconds: amort}
		}
	}
	if math.IsInf(best.AmortizedSeconds, 1) {
		return Placement{}, fmt.Errorf("accel: no backends available")
	}
	return best, nil
}

// PerformancePortability computes the Pennycook performance-portability
// metric for a program across backends: the harmonic mean over backends of
// (best time / backend time), in (0, 1]. A program that runs at the best
// achievable speed everywhere scores 1; a program an order of magnitude
// off-peak on some backend scores low — Section IV.C.3's "OpenCL only
// ensures correctness ... not that the computation has been optimized".
func PerformancePortability(ests []Estimate) float64 {
	if len(ests) == 0 {
		return 0
	}
	best := math.Inf(1)
	for _, e := range ests {
		if e.Seconds < best {
			best = e.Seconds
		}
	}
	if best <= 0 {
		return 0
	}
	acc := 0.0
	for _, e := range ests {
		eff := best / e.Seconds
		acc += 1 / eff
	}
	return float64(len(ests)) / acc
}
