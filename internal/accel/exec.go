package accel

import (
	"fmt"
	"math"
)

// Result is a program's output: a vector, or a scalar for reduced
// programs.
type Result struct {
	Vec    []float64
	Scalar float64
	// IsScalar reports which field is meaningful.
	IsScalar bool
	// Selectivity records, per filter stage index, the observed keep
	// fraction — fed back into the cost models.
	Selectivity map[int]float64
}

// Run executes the program over input on the reference interpreter. All
// backends produce exactly this result; they differ only in modeled cost
// (see Estimate). The input slice is not modified.
func (p *Program) Run(input []float64) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	cur := append([]float64(nil), input...)
	res := Result{Selectivity: map[int]float64{}}
	for i, s := range p.Stages {
		switch s.Kind {
		case MapStage:
			for j, x := range cur {
				cur[j] = s.E.Eval(x)
			}
		case FilterStage:
			kept := cur[:0]
			for _, x := range cur {
				if s.E.Eval(x) > 0 {
					kept = append(kept, x)
				}
			}
			if len(cur) > 0 {
				res.Selectivity[i] = float64(len(kept)) / float64(len(cur))
			} else {
				res.Selectivity[i] = 0
			}
			cur = kept
		case ReduceStage:
			res.IsScalar = true
			res.Scalar = reduce(s.R, cur)
			return res, nil
		}
	}
	res.Vec = cur
	return res, nil
}

func reduce(k ReduceKind, xs []float64) float64 {
	switch k {
	case SumReduce:
		t := 0.0
		for _, x := range xs {
			t += x
		}
		return t
	case MinReduce:
		if len(xs) == 0 {
			return math.Inf(1)
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	case MaxReduce:
		if len(xs) == 0 {
			return math.Inf(-1)
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	case CountReduce:
		return float64(len(xs))
	default:
		panic(fmt.Sprintf("accel: unknown reduce %d", int(k)))
	}
}
