package accel

import (
	"fmt"

	"repro/internal/hw"
)

// Backend models how one device class executes the IR. All backends are
// semantically identical (they would run Program.Run); Estimate prices the
// execution in that backend's style.
type Backend struct {
	Device *hw.Device
	Style  Style
}

// Style captures the execution idiom the roadmap's Section IV.C.3
// enumerates: SIMD on CPU cores, SIMT on GPUs, spatial pipelines on FPGAs.
type Style int

// Styles.
const (
	SIMD Style = iota
	SIMT
	Pipeline
)

func (s Style) String() string {
	switch s {
	case SIMD:
		return "simd"
	case SIMT:
		return "simt"
	case Pipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// Estimate is a backend's predicted cost for one program execution.
type Estimate struct {
	Backend string
	Seconds float64
	EnergyJ float64
	// SetupSeconds is one-off cost (FPGA reconfiguration) amortized by the
	// tuner over repeated runs; it is NOT included in Seconds.
	SetupSeconds float64
	// TransferSeconds is the host<->device movement share of Seconds
	// (PCIe transfers on offload devices; zero for in-socket execution).
	TransferSeconds float64
	// LaunchSeconds is the kernel-launch overhead share of Seconds.
	LaunchSeconds float64
	// StageSeconds breaks Seconds down per stage (fused backends report a
	// single entry).
	StageSeconds []float64
}

// TotalSeconds is the estimate's full cost for `runs` executions divided
// by runs: per-run time plus setup amortized over the planned run count.
// A one-shot decision (runs = 1, the per-morsel placement case) therefore
// charges the whole reconfiguration, where the tuner's long-lived
// placements spread it thin.
func (e Estimate) TotalSeconds(runs int) float64 {
	if runs < 1 {
		runs = 1
	}
	return e.Seconds + e.SetupSeconds/float64(runs)
}

// Constants of the backend cost models.
const (
	// gpuLaunchS is the per-stage kernel-launch latency.
	gpuLaunchS = 10e-6
	// gpuPCIeGBs is host<->device transfer bandwidth.
	gpuPCIeGBs = 12.0
	// gpuDivergenceEff is SIMT efficiency on branchy (filter) stages.
	gpuDivergenceEff = 0.5
	// cpuBranchyEff is SIMD efficiency on branchy (filter) stages: the
	// vector units largely idle.
	cpuBranchyEff = 0.35
	// fpgaReconfigS is the bitstream reconfiguration time for a new
	// program.
	fpgaReconfigS = 0.1
	// fpgaFillFactor inflates the single-pass time slightly for pipeline
	// fill/drain.
	fpgaFillFactor = 1.02
)

// NewCPU returns the SIMD backend over the catalog CPU.
func NewCPU() Backend { return Backend{Device: hw.XeonCPU(), Style: SIMD} }

// NewGPU returns the SIMT backend over the catalog GPGPU.
func NewGPU() Backend { return Backend{Device: hw.GPGPU(), Style: SIMT} }

// NewFPGA returns the pipeline backend over the catalog FPGA card.
func NewFPGA() Backend { return Backend{Device: hw.FPGACard(), Style: Pipeline} }

// DefaultBackends returns the three standard backends.
func DefaultBackends() []Backend { return []Backend{NewCPU(), NewGPU(), NewFPGA()} }

// stagePlan holds the per-stage element counts given input size and
// filter selectivities.
func stagePlan(p *Program, n int, sel map[int]float64) []float64 {
	counts := make([]float64, len(p.Stages))
	cur := float64(n)
	for i, s := range p.Stages {
		counts[i] = cur
		if s.Kind == FilterStage {
			f, ok := sel[i]
			if !ok {
				f = 0.5 // planner default when unobserved
			}
			cur *= f
		}
	}
	return counts
}

// Estimate prices one run of p over n input elements. sel carries observed
// filter selectivities (pass Result.Selectivity; nil uses the planner
// default of 0.5).
func (b Backend) Estimate(p *Program, n int, sel map[int]float64) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	counts := stagePlan(p, n, sel)
	d := b.Device
	est := Estimate{Backend: fmt.Sprintf("%s/%s", d.Name, b.Style)}
	switch b.Style {
	case SIMD, SIMT:
		// Stage-at-a-time execution: each stage reads and writes memory.
		for i, s := range p.Stages {
			elems := counts[i]
			ops := float64(stageOps(s)) * elems
			bytes := 16 * elems // read + write 8B per element
			eff := 1.0
			if s.Kind == FilterStage {
				if b.Style == SIMT {
					eff = gpuDivergenceEff
				} else {
					eff = cpuBranchyEff
				}
			}
			computeS := ops / (d.GOpsPeak * 1e9 * eff)
			memS := bytes / (d.MemGBs * 1e9)
			t := computeS
			if memS > t {
				t = memS
			}
			if b.Style == SIMT {
				t += gpuLaunchS
			}
			est.StageSeconds = append(est.StageSeconds, t)
			est.Seconds += t
		}
		if b.Style == SIMT {
			est.LaunchSeconds = float64(len(p.Stages)) * gpuLaunchS
			// Host <-> device transfers at the pipeline ends.
			out := counts[len(counts)-1]
			if p.HasReduce() {
				out = 1
			}
			xfer := (float64(n) + out) * 8 / (gpuPCIeGBs * 1e9)
			est.Seconds += xfer
			est.TransferSeconds = xfer
			est.StageSeconds = append(est.StageSeconds, xfer)
		}
	case Pipeline:
		// All stages fuse into one spatial pipeline: a single pass over the
		// input with no intermediate memory traffic. Reconfiguration is a
		// one-off setup cost.
		totalOps := 0.0
		for i, s := range p.Stages {
			totalOps += float64(stageOps(s)) * counts[i]
		}
		bytes := float64(n) * 8 // stream in once
		if !p.HasReduce() {
			bytes += counts[len(counts)-1] * 8 // stream result out
		}
		computeS := totalOps / (d.GOpsPeak * 1e9)
		memS := bytes / (d.MemGBs * 1e9)
		t := computeS
		if memS > t {
			t = memS
		}
		t *= fpgaFillFactor
		est.Seconds = t
		est.StageSeconds = []float64{t}
		est.SetupSeconds = fpgaReconfigS
	default:
		return Estimate{}, fmt.Errorf("accel: unknown style %d", int(b.Style))
	}
	est.EnergyJ = est.Seconds * d.Power(1)
	return est, nil
}

// EstimateKernel prices one roofline-described operator kernel (total
// ops, total memory traffic — the internal/kernels descriptors) in this
// backend's execution style. It is the operator-kernel dual of Estimate's
// IR pricing, sharing the same style constants, and is what the exec
// layer uses to price a relational morsel on each device class:
//
//   - SIMD/SIMT run the kernel at min(compute, bandwidth) roofline speed,
//     derated on branchy (filter-shaped) kernels by the style's divergence
//     efficiency; SIMT additionally pays a kernel launch and moves
//     hostBytes across PCIe.
//   - Pipeline streams the kernel through a spatial datapath (fill/drain
//     inflation) and reports the bitstream reconfiguration as
//     SetupSeconds — one-off state the caller amortizes (or charges in
//     full for one-shot placements) via TotalSeconds.
func (b Backend) EstimateKernel(k hw.Kernel, branchy bool, hostBytes float64) Estimate {
	d := b.Device
	est := Estimate{Backend: fmt.Sprintf("%s/%s", d.Name, b.Style)}
	eff := 1.0
	if branchy {
		switch b.Style {
		case SIMD:
			eff = cpuBranchyEff
		case SIMT:
			eff = gpuDivergenceEff
		}
	}
	computeS := k.Ops / (d.GOpsPeak * 1e9 * eff)
	memS := k.Bytes / (d.MemGBs * 1e9)
	t := computeS
	if memS > t {
		t = memS
	}
	switch b.Style {
	case SIMT:
		est.LaunchSeconds = gpuLaunchS
		est.TransferSeconds = hostBytes / (gpuPCIeGBs * 1e9)
		t += est.LaunchSeconds + est.TransferSeconds
	case Pipeline:
		t *= fpgaFillFactor
		est.SetupSeconds = fpgaReconfigS
	}
	est.Seconds = t
	est.EnergyJ = t * d.Power(1)
	return est
}

// stageOps returns arithmetic ops per element for a stage.
func stageOps(s Stage) int {
	switch s.Kind {
	case MapStage, FilterStage:
		ops := s.E.Ops()
		if s.Kind == FilterStage {
			ops++ // the compare
		}
		if ops == 0 {
			ops = 1
		}
		return ops
	case ReduceStage:
		return 1
	default:
		return 1
	}
}
