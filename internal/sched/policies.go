package sched

import (
	"fmt"
	"math"
)

// Policy selects the scheduling strategy.
type Policy int

// Policies, in roughly increasing sophistication.
const (
	FIFO Policy = iota
	RoundRobin
	MinMin
	MaxMin
	HEFT
	PowerAware
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case RoundRobin:
		return "round-robin"
	case MinMin:
		return "min-min"
	case MaxMin:
		return "max-min"
	case HEFT:
		return "heft"
	case PowerAware:
		return "power-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// AllPolicies lists every policy for table-driven experiments.
func AllPolicies() []Policy {
	return []Policy{FIFO, RoundRobin, MinMin, MaxMin, HEFT, PowerAware}
}

// interval is one busy span on a device.
type interval struct{ start, end float64 }

// state tracks the in-progress schedule during list scheduling. Placement
// is insertion-based (standard HEFT): a task may slot into an idle gap
// between already-scheduled tasks, which is what lets independent jobs
// backfill each other's barrier stalls on a shared cluster.
type state struct {
	dag     *DAG
	cluster *Cluster
	devs    []DeviceRef
	busy    [][]interval // device instance -> sorted busy intervals
	busyS   []float64
	finish  map[int]Assignment
}

func newState(d *DAG, c *Cluster) *state {
	devs := c.Devices()
	return &state{
		dag: d, cluster: c, devs: devs,
		busy:   make([][]interval, len(devs)),
		busyS:  make([]float64, len(devs)),
		finish: map[int]Assignment{},
	}
}

// earliestSlot returns the earliest start >= ready on device di that fits
// duration dur, considering gaps between busy intervals.
func (s *state) earliestSlot(di int, ready, dur float64) float64 {
	cur := ready
	for _, iv := range s.busy[di] {
		if cur+dur <= iv.start+1e-15 {
			return cur
		}
		if iv.end > cur {
			cur = iv.end
		}
	}
	return cur
}

// insertSlot records the interval, keeping the list sorted by start.
func (s *state) insertSlot(di int, start, end float64) {
	ivs := s.busy[di]
	pos := len(ivs)
	for i, iv := range ivs {
		if start < iv.start {
			pos = i
			break
		}
	}
	ivs = append(ivs, interval{})
	copy(ivs[pos+1:], ivs[pos:])
	ivs[pos] = interval{start: start, end: end}
	s.busy[di] = ivs
}

// eligible reports whether device di may run task t.
func (s *state) eligible(t Task, di int) bool {
	if t.Eligible == nil {
		return true
	}
	return t.Eligible(s.devs[di].Device)
}

// readyTime returns the earliest moment task t's inputs are present on
// node of device di, including fetching external input data from its
// home site.
func (s *state) readyTime(t Task, di int) float64 {
	ready := 0.0
	if t.InputBytes > 0 {
		ready = s.cluster.SiteCommS(t.InputSite, s.cluster.SiteOf(s.devs[di].Node), t.InputBytes)
	}
	for _, dep := range t.Deps {
		da := s.finish[dep]
		at := da.Finish + s.cluster.CommS(da.Ref.Node, s.devs[di].Node, s.dag.Tasks[dep].OutBytes)
		if at > ready {
			ready = at
		}
	}
	return ready
}

// eft returns the earliest finish time of task t on device di and the
// corresponding start, using insertion into idle gaps.
func (s *state) eft(t Task, di int) (start, finishT float64) {
	ready := s.readyTime(t, di)
	dur := s.devs[di].Device.Seconds(t.Kernel)
	start = s.earliestSlot(di, ready, dur)
	return start, start + dur
}

// place commits task t to device di.
func (s *state) place(t Task, di int) {
	start, fin := s.eft(t, di)
	dur := fin - start
	a := Assignment{
		Task: t.ID, Ref: s.devs[di], Start: start, Finish: fin,
		EnergyJ: dur * s.devs[di].Device.Power(1),
	}
	s.insertSlot(di, start, fin)
	s.busyS[di] += dur
	s.finish[t.ID] = a
}

// result packages the schedule.
func (s *state) result(p Policy) Result {
	r := Result{Policy: p}
	for _, t := range s.dag.Tasks {
		a := s.finish[t.ID]
		r.Assignments = append(r.Assignments, a)
		if a.Finish > r.MakespanS {
			r.MakespanS = a.Finish
		}
		r.EnergyJ += a.EnergyJ
		if t.DeadlineS > 0 && a.Finish > t.DeadlineS {
			r.DeadlineMisses++
		}
	}
	r.UtilByDevice = make([]float64, len(s.devs))
	if r.MakespanS > 0 {
		for i, b := range s.busyS {
			r.UtilByDevice[i] = b / r.MakespanS
		}
	}
	return r
}

// Schedule runs the policy over the DAG on the cluster.
func Schedule(d *DAG, c *Cluster, p Policy) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if len(c.Devices()) == 0 {
		return Result{}, fmt.Errorf("sched: cluster has no devices")
	}
	s := newState(d, c)
	switch p {
	case FIFO:
		return s.listSchedule(p, func(t Task) int { return s.bestDeviceByEFT(t) })
	case RoundRobin:
		next := 0
		return s.listSchedule(p, func(t Task) int {
			for tries := 0; tries < len(s.devs); tries++ {
				di := (next + tries) % len(s.devs)
				if s.eligible(t, di) {
					next = di + 1
					return di
				}
			}
			return -1
		})
	case MinMin, MaxMin:
		return s.minMaxMin(p)
	case HEFT:
		return s.heft()
	case PowerAware:
		return s.listSchedule(p, func(t Task) int { return s.bestDeviceByEnergy(t) })
	default:
		return Result{}, fmt.Errorf("sched: unknown policy %d", int(p))
	}
}

// listSchedule walks tasks in topological order, placing each with pick.
func (s *state) listSchedule(p Policy, pick func(Task) int) (Result, error) {
	order, err := s.dag.TopoOrder()
	if err != nil {
		return Result{}, err
	}
	for _, ti := range order {
		t := s.dag.Tasks[ti]
		di := pick(t)
		if di < 0 {
			return Result{}, fmt.Errorf("sched: no eligible device for task %d", ti)
		}
		s.place(t, di)
	}
	return s.result(p), nil
}

// bestDeviceByEFT returns the eligible device with the earliest finish.
func (s *state) bestDeviceByEFT(t Task) int {
	best, bestFin := -1, math.Inf(1)
	for di := range s.devs {
		if !s.eligible(t, di) {
			continue
		}
		_, fin := s.eft(t, di)
		if fin < bestFin {
			best, bestFin = di, fin
		}
	}
	return best
}

// bestDeviceByEnergy returns the eligible device with minimal energy,
// breaking ties toward earlier finish.
func (s *state) bestDeviceByEnergy(t Task) int {
	best := -1
	bestE, bestFin := math.Inf(1), math.Inf(1)
	for di := range s.devs {
		if !s.eligible(t, di) {
			continue
		}
		_, fin := s.eft(t, di)
		e := s.devs[di].Device.EnergyJ(t.Kernel)
		if e < bestE-1e-12 || (math.Abs(e-bestE) <= 1e-12 && fin < bestFin) {
			best, bestE, bestFin = di, e, fin
		}
	}
	return best
}

// minMaxMin implements the classic min-min / max-min batch heuristics.
func (s *state) minMaxMin(p Policy) (Result, error) {
	n := len(s.dag.Tasks)
	done := make([]bool, n)
	remainingDeps := make([]int, n)
	for i, t := range s.dag.Tasks {
		remainingDeps[i] = len(t.Deps)
	}
	succ := s.dag.Succ()
	scheduled := 0
	for scheduled < n {
		// Ready set.
		type cand struct {
			task, dev int
			fin       float64
		}
		var cands []cand
		for i := 0; i < n; i++ {
			if done[i] || remainingDeps[i] > 0 {
				continue
			}
			t := s.dag.Tasks[i]
			bd, bf := -1, math.Inf(1)
			for di := range s.devs {
				if !s.eligible(t, di) {
					continue
				}
				_, fin := s.eft(t, di)
				if fin < bf {
					bd, bf = di, fin
				}
			}
			if bd < 0 {
				return Result{}, fmt.Errorf("sched: no eligible device for task %d", i)
			}
			cands = append(cands, cand{task: i, dev: bd, fin: bf})
		}
		if len(cands) == 0 {
			return Result{}, fmt.Errorf("sched: deadlock — no ready tasks")
		}
		pick := cands[0]
		for _, c := range cands[1:] {
			if p == MinMin && c.fin < pick.fin {
				pick = c
			}
			if p == MaxMin && c.fin > pick.fin {
				pick = c
			}
		}
		s.place(s.dag.Tasks[pick.task], pick.dev)
		done[pick.task] = true
		scheduled++
		for _, nx := range succ[pick.task] {
			remainingDeps[nx]--
		}
	}
	return s.result(p), nil
}

// heft implements the Heterogeneous Earliest Finish Time heuristic:
// tasks are prioritized by upward rank (mean execution + mean
// communication along the critical path to an exit), then each is placed
// on the device minimizing its earliest finish time.
func (s *state) heft() (Result, error) {
	n := len(s.dag.Tasks)
	// Mean execution time per task across eligible devices.
	meanExec := make([]float64, n)
	for i, t := range s.dag.Tasks {
		total, cnt := 0.0, 0
		for di := range s.devs {
			if !s.eligible(t, di) {
				continue
			}
			total += s.devs[di].Device.Seconds(t.Kernel)
			cnt++
		}
		if cnt == 0 {
			return Result{}, fmt.Errorf("sched: no eligible device for task %d", i)
		}
		meanExec[i] = total / float64(cnt)
	}
	// Mean communication: half the devices share a node in expectation;
	// approximate with half the inter-node cost.
	meanComm := func(from int) float64 {
		return 0.5 * s.cluster.CommS(0, 1, s.dag.Tasks[from].OutBytes)
	}
	succ := s.dag.Succ()
	rank := make([]float64, n)
	var computeRank func(i int) float64
	computeRank = func(i int) float64 {
		if rank[i] > 0 {
			return rank[i]
		}
		best := 0.0
		for _, nx := range succ[i] {
			r := meanComm(i) + computeRank(nx)
			if r > best {
				best = r
			}
		}
		rank[i] = meanExec[i] + best
		return rank[i]
	}
	order := make([]int, n)
	for i := 0; i < n; i++ {
		computeRank(i)
		order[i] = i
	}
	// Descending rank, ties by ID. Descending rank respects precedence
	// because rank(parent) > rank(child) by construction.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && (rank[order[j]] > rank[order[j-1]] ||
			(rank[order[j]] == rank[order[j-1]] && order[j] < order[j-1])); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, ti := range order {
		t := s.dag.Tasks[ti]
		di := s.bestDeviceByEFT(t)
		if di < 0 {
			return Result{}, fmt.Errorf("sched: no eligible device for task %d", ti)
		}
		s.place(t, di)
	}
	return s.result(HEFT), nil
}
