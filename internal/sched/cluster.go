package sched

import (
	"fmt"

	"repro/internal/hw"
)

// Site locates a node in the edge/cloud split of Recommendation 11
// ("edge computing and cloud computing environments calling for
// heterogeneous hardware platforms").
type Site int

// Sites.
const (
	Edge Site = iota
	Cloud
)

// String implements fmt.Stringer.
func (s Site) String() string {
	if s == Cloud {
		return "cloud"
	}
	return "edge"
}

// Cluster is a set of heterogeneous nodes joined by a fabric, optionally
// split across edge and cloud sites with a WAN between them.
type Cluster struct {
	Nodes []*hw.Node
	// InterNodeGBs is same-site node-to-node bandwidth; InterNodeLatS the
	// per transfer latency. Intra-node transfers are free.
	InterNodeGBs  float64
	InterNodeLatS float64
	// Sites assigns each node a site (nil: all nodes share one site).
	Sites []Site
	// WANGBs / WANLatS price cross-site transfers.
	WANGBs  float64
	WANLatS float64
}

// NewCluster returns a single-site cluster over the nodes with a
// 10 GbE-class fabric (1.25 GB/s, 50 µs).
func NewCluster(nodes ...*hw.Node) *Cluster {
	return &Cluster{Nodes: nodes, InterNodeGBs: 1.25, InterNodeLatS: 50e-6}
}

// SiteOf returns a node's site (single-site clusters are all Edge).
func (c *Cluster) SiteOf(node int) Site {
	if c.Sites == nil || node >= len(c.Sites) {
		return Edge
	}
	return c.Sites[node]
}

// EdgeCloud builds the Recommendation-11 environment: `edge` small
// CPU-only nodes near the data, `cloud` accelerator-rich nodes behind a
// WAN (1 GB/s, 25 ms one-way).
func EdgeCloud(edge, cloud int) *Cluster {
	var nodes []*hw.Node
	var sites []Site
	for i := 0; i < edge; i++ {
		nodes = append(nodes, hw.CommodityNode())
		sites = append(sites, Edge)
	}
	for i := 0; i < cloud; i++ {
		if i%2 == 0 {
			nodes = append(nodes, hw.GPUNode())
		} else {
			nodes = append(nodes, hw.KitchenSinkNode())
		}
		sites = append(sites, Cloud)
	}
	c := NewCluster(nodes...)
	c.Sites = sites
	c.WANGBs = 1.0
	c.WANLatS = 25e-3
	return c
}

// SiteCommS returns the transfer time for bytes between two sites.
func (c *Cluster) SiteCommS(from, to Site, bytes float64) float64 {
	if from == to || bytes <= 0 {
		return 0
	}
	return c.WANLatS + bytes/(c.WANGBs*1e9)
}

// DeviceRef addresses one device instance in the cluster.
type DeviceRef struct {
	Node   int
	Device *hw.Device
}

// Devices enumerates every device instance.
func (c *Cluster) Devices() []DeviceRef {
	var out []DeviceRef
	for ni, n := range c.Nodes {
		for _, d := range n.Devices() {
			out = append(out, DeviceRef{Node: ni, Device: d})
		}
	}
	return out
}

// CommS returns the transfer time for bytes between two node indices:
// free within a node, fabric within a site, WAN across sites.
func (c *Cluster) CommS(from, to int, bytes float64) float64 {
	if from == to || bytes <= 0 {
		return 0
	}
	if c.SiteOf(from) != c.SiteOf(to) {
		return c.SiteCommS(c.SiteOf(from), c.SiteOf(to), bytes)
	}
	return c.InterNodeLatS + bytes/(c.InterNodeGBs*1e9)
}

// HomogeneousCPU returns n CPU-only nodes.
func HomogeneousCPU(n int) *Cluster {
	nodes := make([]*hw.Node, n)
	for i := range nodes {
		nodes[i] = hw.CommodityNode()
	}
	return NewCluster(nodes...)
}

// Heterogeneous returns n nodes alternating between GPU-, FPGA- and
// CPU-only configurations — the Recommendation-11 target environment.
func Heterogeneous(n int) *Cluster {
	nodes := make([]*hw.Node, n)
	for i := range nodes {
		switch i % 3 {
		case 0:
			nodes[i] = hw.GPUNode()
		case 1:
			nodes[i] = hw.FPGANode()
		default:
			nodes[i] = hw.CommodityNode()
		}
	}
	return NewCluster(nodes...)
}

// Assignment records one scheduled task.
type Assignment struct {
	Task    int
	Ref     DeviceRef
	Start   float64
	Finish  float64
	EnergyJ float64
}

// Result is a complete schedule.
type Result struct {
	Policy      Policy
	Assignments []Assignment
	MakespanS   float64
	EnergyJ     float64
	// UtilByDevice is busy time / makespan per device instance, indexed
	// like Cluster.Devices().
	UtilByDevice []float64
	// DeadlineMisses counts tasks finishing after their DeadlineS.
	DeadlineMisses int
}

// MeanUtilization averages device utilization.
func (r Result) MeanUtilization() float64 {
	if len(r.UtilByDevice) == 0 {
		return 0
	}
	t := 0.0
	for _, u := range r.UtilByDevice {
		t += u
	}
	return t / float64(len(r.UtilByDevice))
}

// Validate checks the schedule respects dependencies and device
// exclusivity.
func (r Result) Validate(d *DAG, c *Cluster) error {
	finish := make(map[int]Assignment, len(r.Assignments))
	for _, a := range r.Assignments {
		finish[a.Task] = a
	}
	if len(finish) != len(d.Tasks) {
		return fmt.Errorf("sched: %d of %d tasks scheduled", len(finish), len(d.Tasks))
	}
	for _, a := range r.Assignments {
		for _, dep := range d.Tasks[a.Task].Deps {
			da, ok := finish[dep]
			if !ok {
				return fmt.Errorf("sched: task %d scheduled before dep %d", a.Task, dep)
			}
			comm := c.CommS(da.Ref.Node, a.Ref.Node, d.Tasks[dep].OutBytes)
			if a.Start+1e-9 < da.Finish+comm {
				return fmt.Errorf("sched: task %d starts at %g before dep %d ready at %g",
					a.Task, a.Start, dep, da.Finish+comm)
			}
		}
	}
	// Device exclusivity: no overlapping intervals on one device instance.
	byDev := map[DeviceRef][]Assignment{}
	for _, a := range r.Assignments {
		byDev[a.Ref] = append(byDev[a.Ref], a)
	}
	for ref, as := range byDev {
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				a, b := as[i], as[j]
				if a.Start < b.Finish-1e-9 && b.Start < a.Finish-1e-9 {
					return fmt.Errorf("sched: tasks %d and %d overlap on node %d %s",
						a.Task, b.Task, ref.Node, ref.Device.Name)
				}
			}
		}
	}
	return nil
}
