// Package sched implements the "dynamic scheduling and resource
// allocation strategies" of Recommendation 11: task DAGs with roofline
// kernel descriptors scheduled onto heterogeneous clusters (CPU, GPU,
// FPGA, ASIC devices) under six policies — FIFO, round-robin, min-min,
// max-min, HEFT and a power-aware greedy — with makespan, energy and
// utilization reported. The E12 experiment compares the policies; E16
// uses the same machinery for the HPC/Big-Data convergence study.
package sched

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Task is one schedulable unit.
type Task struct {
	ID     int
	Name   string
	Kernel hw.Kernel
	// Deps are task IDs that must finish first.
	Deps []int
	// OutBytes is the data volume shipped to each dependent.
	OutBytes float64
	// InputBytes and InputSite locate the task's source data (sensor
	// streams at the edge, historic stores in the cloud); tasks without
	// external input leave InputBytes at 0.
	InputBytes float64
	InputSite  Site
	// DeadlineS is a completion deadline in seconds (0 = none) — the
	// latency constraint edge analytics carry.
	DeadlineS float64
	// Eligible restricts eligible devices (e.g. an ASIC only accelerates
	// its kernel family). Nil means any device.
	Eligible func(*hw.Device) bool
}

// DAG is a dependency graph of tasks, indexed by position (IDs must equal
// indices).
type DAG struct {
	Tasks []Task
}

// Validate checks ID/index agreement, dependency ranges and acyclicity.
func (d *DAG) Validate() error {
	for i, t := range d.Tasks {
		if t.ID != i {
			return fmt.Errorf("sched: task %d has ID %d (must equal index)", i, t.ID)
		}
		for _, dep := range t.Deps {
			if dep < 0 || dep >= len(d.Tasks) {
				return fmt.Errorf("sched: task %d depends on out-of-range %d", i, dep)
			}
			if dep == i {
				return fmt.Errorf("sched: task %d depends on itself", i)
			}
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological order (Kahn), erroring on cycles. Ties
// resolve by ascending ID, so the order is deterministic.
func (d *DAG) TopoOrder() ([]int, error) {
	n := len(d.Tasks)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for i, t := range d.Tasks {
		indeg[i] = len(t.Deps)
		for _, dep := range t.Deps {
			succ[dep] = append(succ[dep], i)
		}
	}
	// Deterministic min-ID ready selection via a simple ordered scan
	// (n is small for scheduling DAGs).
	ready := make([]bool, n)
	done := make([]bool, n)
	for i := range indeg {
		ready[i] = indeg[i] == 0
	}
	var order []int
	for len(order) < n {
		picked := -1
		for i := 0; i < n; i++ {
			if ready[i] && !done[i] {
				picked = i
				break
			}
		}
		if picked == -1 {
			return nil, fmt.Errorf("sched: dependency cycle detected")
		}
		done[picked] = true
		order = append(order, picked)
		for _, s := range succ[picked] {
			indeg[s]--
			if indeg[s] == 0 {
				ready[s] = true
			}
		}
	}
	return order, nil
}

// Succ returns the successor lists.
func (d *DAG) Succ() [][]int {
	succ := make([][]int, len(d.Tasks))
	for i, t := range d.Tasks {
		for _, dep := range t.Deps {
			succ[dep] = append(succ[dep], i)
		}
	}
	return succ
}

// AnalyticsDAGSpec drives the synthetic pipeline generator.
type AnalyticsDAGSpec struct {
	Seed uint64
	// Stages is the pipeline depth; WidthPerStage the parallel tasks per
	// stage (fan-out then fan-in, like a shuffle boundary).
	Stages, WidthPerStage int
	// ComputeHeavy biases kernels toward high operational intensity
	// (HPC-ish) instead of bandwidth-bound analytics kernels.
	ComputeHeavy bool
}

// AnalyticsDAG generates a layered DAG shaped like a distributed analytics
// job: each stage's tasks depend on all tasks of the previous stage (a
// shuffle), with kernel mixes drawn from the building-block descriptors.
func AnalyticsDAG(spec AnalyticsDAGSpec) *DAG {
	rng := sim.NewRNG(spec.Seed)
	d := &DAG{}
	var prev []int
	id := 0
	for s := 0; s < spec.Stages; s++ {
		var cur []int
		for w := 0; w < spec.WidthPerStage; w++ {
			var k hw.Kernel
			if spec.ComputeHeavy {
				k = hw.Kernel{
					Name:             fmt.Sprintf("compute-s%dw%d", s, w),
					Ops:              rng.Range(5e9, 2e10),
					Bytes:            rng.Range(1e7, 1e8),
					ParallelFraction: 0.99,
				}
			} else {
				k = hw.Kernel{
					Name:             fmt.Sprintf("scan-s%dw%d", s, w),
					Ops:              rng.Range(2e8, 2e9),
					Bytes:            rng.Range(5e8, 4e9),
					ParallelFraction: 0.97,
				}
			}
			t := Task{
				ID: id, Name: k.Name, Kernel: k,
				OutBytes: rng.Range(1e6, 5e7),
			}
			t.Deps = append(t.Deps, prev...)
			d.Tasks = append(d.Tasks, t)
			cur = append(cur, id)
			id++
		}
		prev = cur
	}
	return d
}
