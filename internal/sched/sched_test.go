package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
)

func diamondDAG() *DAG {
	k := hw.Kernel{Name: "k", Ops: 1e9, Bytes: 1e8, ParallelFraction: 0.95}
	return &DAG{Tasks: []Task{
		{ID: 0, Name: "src", Kernel: k, OutBytes: 1e6},
		{ID: 1, Name: "l", Kernel: k, Deps: []int{0}, OutBytes: 1e6},
		{ID: 2, Name: "r", Kernel: k, Deps: []int{0}, OutBytes: 1e6},
		{ID: 3, Name: "sink", Kernel: k, Deps: []int{1, 2}},
	}}
}

func TestDAGValidation(t *testing.T) {
	if err := diamondDAG().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &DAG{Tasks: []Task{{ID: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("wrong ID must fail")
	}
	cyc := &DAG{Tasks: []Task{
		{ID: 0, Deps: []int{1}},
		{ID: 1, Deps: []int{0}},
	}}
	if err := cyc.Validate(); err == nil {
		t.Fatal("cycle must fail")
	}
	self := &DAG{Tasks: []Task{{ID: 0, Deps: []int{0}}}}
	if err := self.Validate(); err == nil {
		t.Fatal("self-dependency must fail")
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	d := diamondDAG()
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, task := range d.Tasks {
		for _, dep := range task.Deps {
			if pos[dep] > pos[task.ID] {
				t.Fatalf("dep %d after task %d", dep, task.ID)
			}
		}
	}
}

func TestAllPoliciesProduceValidSchedules(t *testing.T) {
	dag := AnalyticsDAG(AnalyticsDAGSpec{Seed: 3, Stages: 4, WidthPerStage: 5})
	cluster := Heterogeneous(4)
	for _, p := range AllPolicies() {
		res, err := Schedule(dag, cluster, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if err := res.Validate(dag, cluster); err != nil {
			t.Fatalf("%v: invalid schedule: %v", p, err)
		}
		if res.MakespanS <= 0 || res.EnergyJ <= 0 {
			t.Fatalf("%v: degenerate metrics %+v", p, res)
		}
	}
}

func TestSchedulesDeterministic(t *testing.T) {
	dag := AnalyticsDAG(AnalyticsDAGSpec{Seed: 5, Stages: 3, WidthPerStage: 4})
	for _, p := range AllPolicies() {
		a, err := Schedule(dag, Heterogeneous(3), p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(dag, Heterogeneous(3), p)
		if err != nil {
			t.Fatal(err)
		}
		if a.MakespanS != b.MakespanS || a.EnergyJ != b.EnergyJ {
			t.Fatalf("%v: nondeterministic schedule", p)
		}
	}
}

func TestHEFTBeatsRoundRobin(t *testing.T) {
	// On a heterogeneous cluster with mixed kernels, HEFT's rank+EFT
	// should beat blind round-robin placement.
	dag := AnalyticsDAG(AnalyticsDAGSpec{Seed: 11, Stages: 5, WidthPerStage: 6, ComputeHeavy: true})
	cluster := Heterogeneous(4)
	heft, err := Schedule(dag, cluster, HEFT)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Schedule(dag, cluster, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if heft.MakespanS >= rr.MakespanS {
		t.Fatalf("HEFT (%v) should beat round-robin (%v)", heft.MakespanS, rr.MakespanS)
	}
}

func TestPowerAwareSavesEnergy(t *testing.T) {
	dag := AnalyticsDAG(AnalyticsDAGSpec{Seed: 13, Stages: 4, WidthPerStage: 4, ComputeHeavy: true})
	cluster := Heterogeneous(4)
	pa, err := Schedule(dag, cluster, PowerAware)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Schedule(dag, cluster, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if pa.EnergyJ > ff.EnergyJ {
		t.Fatalf("power-aware energy (%v) should not exceed FIFO (%v)", pa.EnergyJ, ff.EnergyJ)
	}
}

func TestEligibilityRestriction(t *testing.T) {
	k := hw.Kernel{Name: "k", Ops: 1e9, Bytes: 1e7, ParallelFraction: 0.99}
	dag := &DAG{Tasks: []Task{{
		ID: 0, Kernel: k,
		Eligible: func(d *hw.Device) bool { return d.Class == hw.FPGA },
	}}}
	res, err := Schedule(dag, Heterogeneous(3), FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0].Ref.Device.Class != hw.FPGA {
		t.Fatalf("task placed on %v, want fpga", res.Assignments[0].Ref.Device.Class)
	}
	// A CPU-only cluster cannot host it.
	if _, err := Schedule(dag, HomogeneousCPU(2), FIFO); err == nil {
		t.Fatal("expected no-eligible-device error")
	}
}

func TestCommCostDelaysCrossNodeDeps(t *testing.T) {
	// Two tasks in a chain with a huge intermediate output: scheduling the
	// child on another node must include transfer time.
	k := hw.Kernel{Name: "k", Ops: 1e9, Bytes: 1e7, ParallelFraction: 0.9}
	dag := &DAG{Tasks: []Task{
		{ID: 0, Kernel: k, OutBytes: 12.5e9}, // 10 s at 1.25 GB/s
		{ID: 1, Kernel: k, Deps: []int{0}},
	}}
	cluster := HomogeneousCPU(2)
	res, err := Schedule(dag, cluster, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	a0, a1 := res.Assignments[0], res.Assignments[1]
	if a0.Ref.Node == a1.Ref.Node {
		// EFT should co-locate to dodge the 10 s transfer.
		if a1.Start+1e-9 < a0.Finish {
			t.Fatal("child started before parent finished")
		}
	} else if a1.Start < a0.Finish+10 {
		t.Fatalf("cross-node child ignored comm cost: start %v, parent end %v", a1.Start, a0.Finish)
	}
}

func TestEFTAvoidsExpensiveTransfer(t *testing.T) {
	// With EFT-based policies the child lands on the parent's node when
	// the transfer dwarfs compute.
	k := hw.Kernel{Name: "k", Ops: 1e9, Bytes: 1e7, ParallelFraction: 0.9}
	dag := &DAG{Tasks: []Task{
		{ID: 0, Kernel: k, OutBytes: 12.5e9},
		{ID: 1, Kernel: k, Deps: []int{0}},
	}}
	res, err := Schedule(dag, HomogeneousCPU(2), MinMin)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[0].Ref.Node != res.Assignments[1].Ref.Node {
		t.Fatal("min-min should co-locate dependent tasks under heavy data gravity")
	}
}

func TestUtilizationBounds(t *testing.T) {
	dag := AnalyticsDAG(AnalyticsDAGSpec{Seed: 7, Stages: 3, WidthPerStage: 8})
	res, err := Schedule(dag, Heterogeneous(3), MinMin)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.UtilByDevice {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("device %d utilization %v out of bounds", i, u)
		}
	}
	if res.MeanUtilization() <= 0 {
		t.Fatal("mean utilization must be positive")
	}
}

func TestSharedClusterBeatsSegregated(t *testing.T) {
	// E16 in miniature: an HPC-ish compute DAG and a Big-Data scan DAG on
	// (a) two segregated 2-node clusters vs (b) one shared 4-node cluster.
	// Sharing lets each job borrow the other's idle devices — but only
	// when the fabric is fast enough that spreading a job across nodes
	// does not drown in stage transfers. That is exactly the coupling of
	// Recommendations 2 (convergence) and 3 (faster fabrics); the test
	// pins the fast-fabric regime.
	hpc := AnalyticsDAG(AnalyticsDAGSpec{Seed: 21, Stages: 4, WidthPerStage: 6, ComputeHeavy: true})
	bigdata := AnalyticsDAG(AnalyticsDAGSpec{Seed: 22, Stages: 4, WidthPerStage: 6})

	const fabricGBs = 50 // 400 GbE-class fabric
	segA, segB := Heterogeneous(2), Heterogeneous(2)
	segA.InterNodeGBs = fabricGBs
	segB.InterNodeGBs = fabricGBs
	// The shared cluster is the exact union of the two segregated ones, so
	// the comparison isolates pooling from hardware mix.
	sharedCluster := NewCluster(append(append([]*hw.Node{}, segA.Nodes...), segB.Nodes...)...)
	sharedCluster.InterNodeGBs = fabricGBs

	segHPC, err := Schedule(hpc, segA, HEFT)
	if err != nil {
		t.Fatal(err)
	}
	segBD, err := Schedule(bigdata, segB, HEFT)
	if err != nil {
		t.Fatal(err)
	}
	segWorst := segHPC.MakespanS
	if segBD.MakespanS > segWorst {
		segWorst = segBD.MakespanS
	}

	// Shared: merge the two DAGs into one forest on 4 nodes.
	merged := &DAG{}
	for _, t := range hpc.Tasks {
		merged.Tasks = append(merged.Tasks, t)
	}
	off := len(merged.Tasks)
	for _, tk := range bigdata.Tasks {
		nt := tk
		nt.ID += off
		nt.Deps = append([]int(nil), tk.Deps...)
		for i := range nt.Deps {
			nt.Deps[i] += off
		}
		merged.Tasks = append(merged.Tasks, nt)
	}
	shared, err := Schedule(merged, sharedCluster, HEFT)
	if err != nil {
		t.Fatal(err)
	}
	if shared.MakespanS > segWorst*1.001 {
		t.Fatalf("shared cluster (%v) should beat segregated worst (%v)", shared.MakespanS, segWorst)
	}
}

func TestScheduleValidatesInput(t *testing.T) {
	bad := &DAG{Tasks: []Task{{ID: 5}}}
	if _, err := Schedule(bad, Heterogeneous(2), FIFO); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := Schedule(diamondDAG(), &Cluster{}, FIFO); err == nil {
		t.Fatal("expected empty-cluster error")
	}
}

func TestAnalyticsDAGShape(t *testing.T) {
	d := AnalyticsDAG(AnalyticsDAGSpec{Seed: 1, Stages: 3, WidthPerStage: 4})
	if len(d.Tasks) != 12 {
		t.Fatalf("tasks = %d", len(d.Tasks))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Stage 2 tasks depend on all 4 stage-1 tasks.
	if len(d.Tasks[4].Deps) != 4 {
		t.Fatalf("stage-2 deps = %d", len(d.Tasks[4].Deps))
	}
}

func TestScheduleValidProperty(t *testing.T) {
	f := func(seed uint64, stages, width uint8) bool {
		s := int(stages%4) + 1
		w := int(width%4) + 1
		dag := AnalyticsDAG(AnalyticsDAGSpec{Seed: seed, Stages: s, WidthPerStage: w})
		cluster := Heterogeneous(3)
		for _, p := range []Policy{FIFO, MinMin, HEFT} {
			res, err := Schedule(dag, cluster, p)
			if err != nil {
				return false
			}
			if res.Validate(dag, cluster) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
