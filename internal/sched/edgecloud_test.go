package sched

import (
	"testing"

	"repro/internal/hw"
)

// sensorDAG models edge analytics: latency-critical ingest/detect tasks
// whose input lives at the edge, feeding a heavy training task whose
// natural home is the cloud.
func sensorDAG() *DAG {
	detect := hw.Kernel{Name: "detect", Ops: 5e8, Bytes: 5e7, ParallelFraction: 0.95}
	train := hw.Kernel{Name: "train", Ops: 5e10, Bytes: 5e8, ParallelFraction: 0.99}
	d := &DAG{}
	for i := 0; i < 4; i++ {
		// 40 ms deadline: an edge node answers in ~1 ms; fetching the
		// 20 MB input over the 25 ms WAN (≈45 ms total) cannot.
		d.Tasks = append(d.Tasks, Task{
			ID: i, Name: "detect", Kernel: detect,
			InputBytes: 2e7, InputSite: Edge,
			DeadlineS: 0.04, OutBytes: 1e6,
		})
	}
	d.Tasks = append(d.Tasks, Task{
		ID: 4, Name: "train", Kernel: train,
		Deps: []int{0, 1, 2, 3},
	})
	return d
}

func TestSiteCommPricing(t *testing.T) {
	c := EdgeCloud(2, 2)
	// Same site: fabric. Cross-site: WAN.
	fabric := c.CommS(0, 1, 1e9)
	wan := c.CommS(0, 2, 1e9)
	if wan <= fabric {
		t.Fatalf("WAN (%v) must be slower than fabric (%v)", wan, fabric)
	}
	if got := c.SiteCommS(Edge, Edge, 1e9); got != 0 {
		t.Fatalf("same-site site comm = %v", got)
	}
	if c.SiteOf(0) != Edge || c.SiteOf(2) != Cloud {
		t.Fatal("site assignment wrong")
	}
}

func TestSingleSiteClusterUnchanged(t *testing.T) {
	// Site-less clusters behave exactly as before.
	c := NewCluster(hw.CommodityNode(), hw.CommodityNode())
	if c.SiteOf(0) != c.SiteOf(1) {
		t.Fatal("single-site cluster must have uniform sites")
	}
	want := c.InterNodeLatS + 1e9/(c.InterNodeGBs*1e9)
	if got := c.CommS(0, 1, 1e9); got != want {
		t.Fatalf("comm = %v, want %v", got, want)
	}
}

func TestEdgeTasksStayLocalUnderDeadline(t *testing.T) {
	dag := sensorDAG()
	cluster := EdgeCloud(2, 2)
	res, err := Schedule(dag, cluster, MinMin)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(dag, cluster); err != nil {
		t.Fatal(err)
	}
	// The detect tasks must meet their 40 ms deadlines: EFT places them
	// at the edge where their input is free, since a cloud fetch alone
	// costs ~45 ms.
	if res.DeadlineMisses != 0 {
		t.Fatalf("deadline misses = %d", res.DeadlineMisses)
	}
	for _, a := range res.Assignments {
		if dag.Tasks[a.Task].Name == "detect" && cluster.SiteOf(a.Ref.Node) != Edge {
			t.Fatalf("detect task %d placed in the cloud", a.Task)
		}
	}
}

func TestHeavyTrainingGoesToCloud(t *testing.T) {
	dag := sensorDAG()
	cluster := EdgeCloud(2, 2)
	res, err := Schedule(dag, cluster, MinMin)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if dag.Tasks[a.Task].Name == "train" {
			if cluster.SiteOf(a.Ref.Node) != Cloud {
				t.Fatal("training task should cross the WAN to the GPUs")
			}
			if a.Ref.Device.Class == hw.CPU {
				t.Fatal("training task should land on an accelerator")
			}
		}
	}
}

func TestCloudOnlyMissesDeadlines(t *testing.T) {
	// The counterfactual: with no edge compute, WAN fetch pushes detect
	// tasks past their deadlines.
	dag := sensorDAG()
	cloudOnly := EdgeCloud(0, 4)
	res, err := Schedule(dag, cloudOnly, MinMin)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Fatal("cloud-only placement should miss edge deadlines")
	}
}

func TestEdgeOnlySlowerOverall(t *testing.T) {
	dag := sensorDAG()
	edgeOnly := EdgeCloud(4, 0)
	hybrid := EdgeCloud(2, 2)
	re, err := Schedule(dag, edgeOnly, MinMin)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Schedule(dag, hybrid, MinMin)
	if err != nil {
		t.Fatal(err)
	}
	if rh.MakespanS >= re.MakespanS {
		t.Fatalf("hybrid (%v) should beat edge-only (%v): the GPU training dominates",
			rh.MakespanS, re.MakespanS)
	}
}

func TestSiteString(t *testing.T) {
	if Edge.String() != "edge" || Cloud.String() != "cloud" {
		t.Fatal("site strings")
	}
}
