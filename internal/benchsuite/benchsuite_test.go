package benchsuite

import (
	"math"
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestBaselineScoresOne(t *testing.T) {
	base := SUT{Name: "commodity", Node: hw.CommodityNode()}
	res, err := Run(StandardSuite(), base, []SUT{base})
	if err != nil {
		t.Fatal(err)
	}
	for bi := range res.Suite {
		if r := res.Cells[0][bi].Ratio; math.Abs(r-1) > 1e-9 {
			t.Fatalf("baseline ratio on %s = %v, want 1", res.Suite[bi].Name, r)
		}
	}
	if math.Abs(res.Overall[0]-1) > 1e-9 {
		t.Fatalf("baseline overall = %v", res.Overall[0])
	}
}

func TestAcceleratedSUTsBeatBaseline(t *testing.T) {
	base := SUT{Name: "commodity", Node: hw.CommodityNode()}
	res, err := Run(StandardSuite(), base, StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for i, s := range res.SUTs {
		byName[s.Name] = res.Overall[i]
	}
	if byName["gpu"] <= 1 {
		t.Fatalf("gpu overall = %v, want > 1", byName["gpu"])
	}
	if byName["hetero"] < byName["gpu"] {
		t.Fatalf("hetero (%v) should be at least gpu (%v): superset of accelerators", byName["hetero"], byName["gpu"])
	}
}

func TestFPGAWinsEnergyScore(t *testing.T) {
	base := SUT{Name: "commodity", Node: hw.CommodityNode()}
	res, err := Run(StandardSuite(), base, StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	var fpgaE, gpuE float64
	for i, s := range res.SUTs {
		switch s.Name {
		case "fpga":
			fpgaE = res.OverallEnergy[i]
		case "gpu":
			gpuE = res.OverallEnergy[i]
		}
	}
	if fpgaE <= 1 {
		t.Fatalf("fpga energy score = %v, want > 1", fpgaE)
	}
	_ = gpuE // gpu may also score > 1; fpga's 25 W just must clear the bar
}

func TestRankingOrdered(t *testing.T) {
	base := SUT{Name: "commodity", Node: hw.CommodityNode()}
	res, err := Run(StandardSuite(), base, StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	names := res.Ranking()
	if len(names) != 4 {
		t.Fatalf("ranking = %v", names)
	}
	scores := map[string]float64{}
	for i, s := range res.SUTs {
		scores[s.Name] = res.Overall[i]
	}
	for i := 1; i < len(names); i++ {
		if scores[names[i]] > scores[names[i-1]] {
			t.Fatalf("ranking not descending: %v", names)
		}
	}
	// The hetero box (GPU+FPGA+ASIC) leads on throughput, the GPU next.
	// The FPGA node ties commodity on *throughput* (the suite's kernels
	// are memory-bound and the Xeon has 3× the FPGA's DRAM bandwidth) —
	// its win is energy, covered by TestFPGAWinsEnergyScore. That split
	// is the roadmap's own framing: GPUs for throughput, FPGAs for
	// efficiency and determinism.
	if names[0] != "hetero" || names[1] != "gpu" {
		t.Fatalf("expected hetero, gpu at the top, got %v", names)
	}
}

func TestTableRendersAllRows(t *testing.T) {
	base := SUT{Name: "commodity", Node: hw.CommodityNode()}
	res, err := Run(StandardSuite(), base, StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Table()
	text := tab.Render()
	for _, b := range StandardSuite() {
		if !strings.Contains(text, b.Name) {
			t.Fatalf("table missing benchmark %s:\n%s", b.Name, text)
		}
	}
	if !strings.Contains(text, "OVERALL") || !strings.Contains(text, "ENERGY") {
		t.Fatalf("table missing summary rows:\n%s", text)
	}
	if tab.NumRows() != len(StandardSuite())+2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestRunValidation(t *testing.T) {
	base := SUT{Name: "b", Node: hw.CommodityNode()}
	if _, err := Run(nil, base, nil); err == nil {
		t.Fatal("empty suite must error")
	}
	if _, err := Run(StandardSuite(), SUT{Name: "x"}, nil); err == nil {
		t.Fatal("nil baseline node must error")
	}
	if _, err := Run(StandardSuite(), base, []SUT{{Name: "broken"}}); err == nil {
		t.Fatal("nil SUT node must error")
	}
}

func TestDeterministic(t *testing.T) {
	base := SUT{Name: "commodity", Node: hw.CommodityNode()}
	a, err := Run(StandardSuite(), base, StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(StandardSuite(), base, StandardSUTs())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Overall {
		if a.Overall[i] != b.Overall[i] {
			t.Fatal("suite scores nondeterministic")
		}
	}
}
