// Package benchsuite implements Recommendation 9: "establishing
// benchmarks to compare current and novel architectures using Big Data
// applications". A standard suite of Big-Data workload classes (scan,
// sort, join, ML, graph, text) is scored on candidate system
// configurations against a commodity baseline, producing the side-by-side
// comparison the roadmap says industry lacks ("the lack of a clean metric
// or benchmark for side-by-side comparisons for novel hardware").
package benchsuite

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hw"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/tco"
)

// Benchmark is one suite entry: a workload-class kernel plus how much of
// it can be offloaded to an accelerator in a realistic deployment.
type Benchmark struct {
	Name   string
	Kernel hw.Kernel
	// OffloadFraction is the share of the workload an accelerator can
	// absorb (the rest stays on the host CPU).
	OffloadFraction float64
	// Weight scales the benchmark's contribution to the overall score.
	Weight float64
}

// StandardSuite returns the six workload classes of the suite, built from
// the Recommendation-10 building-block descriptors.
func StandardSuite() []Benchmark {
	return []Benchmark{
		{Name: "scan", Kernel: kernels.FilterDescriptor(1<<24, 0.1), OffloadFraction: 0.9, Weight: 1},
		{Name: "sort", Kernel: kernels.SortDescriptor(1 << 24), OffloadFraction: 0.8, Weight: 1},
		{Name: "join", Kernel: kernels.JoinDescriptor(1<<22, 1<<24), OffloadFraction: 0.7, Weight: 1},
		{Name: "ml-kmeans", Kernel: kernels.KMeansDescriptor(1<<19, 16, 32), OffloadFraction: 0.95, Weight: 1},
		{Name: "graph-pagerank", Kernel: kernels.PageRankDescriptor(1<<20, 1<<23), OffloadFraction: 0.85, Weight: 1},
		{Name: "text-scan", Kernel: kernels.ScanTextDescriptor(1 << 28), OffloadFraction: 0.9, Weight: 1},
	}
}

// SUT is one system under test.
type SUT struct {
	Name string
	Node *hw.Node
}

// StandardSUTs returns the four architecture configurations the E10
// experiment compares.
func StandardSUTs() []SUT {
	return []SUT{
		{Name: "commodity", Node: hw.CommodityNode()},
		{Name: "gpu", Node: hw.GPUNode()},
		{Name: "fpga", Node: hw.FPGANode()},
		{Name: "hetero", Node: hw.KitchenSinkNode()},
	}
}

// BenchScore is one (SUT, benchmark) cell.
type BenchScore struct {
	Throughput  float64 // kernels/second
	Ratio       float64 // vs baseline
	OpsPerJ     float64
	EnergyRatio float64 // ops/J vs baseline
}

// Result is a full suite run.
type Result struct {
	Baseline string
	Suite    []Benchmark
	SUTs     []SUT
	// Cells[sutIndex][benchIndex].
	Cells [][]BenchScore
	// Overall is the weighted geometric mean of the throughput ratios per
	// SUT (geomean is the standard for cross-benchmark aggregation since
	// it is unit-free and composition-order independent).
	Overall []float64
	// OverallEnergy is the analogous energy-efficiency score.
	OverallEnergy []float64
}

// Run scores every SUT against the baseline (SUT index 0 by convention is
// not required; baseline is passed explicitly).
func Run(suite []Benchmark, baseline SUT, suts []SUT) (*Result, error) {
	if len(suite) == 0 {
		return nil, fmt.Errorf("benchsuite: empty suite")
	}
	if baseline.Node == nil {
		return nil, fmt.Errorf("benchsuite: baseline has no node")
	}
	res := &Result{Baseline: baseline.Name, Suite: suite, SUTs: suts}
	baseT := make([]float64, len(suite))
	baseE := make([]float64, len(suite))
	for bi, b := range suite {
		baseT[bi] = tco.NodeThroughput(baseline.Node, b.Kernel, offloadFor(baseline.Node, b))
		baseE[bi] = nodeOpsPerJoule(baseline.Node, b)
		if baseT[bi] <= 0 {
			return nil, fmt.Errorf("benchsuite: baseline throughput zero on %s", b.Name)
		}
	}
	for _, sut := range suts {
		if sut.Node == nil {
			return nil, fmt.Errorf("benchsuite: SUT %q has no node", sut.Name)
		}
		row := make([]BenchScore, len(suite))
		logSum, logESum, wSum := 0.0, 0.0, 0.0
		for bi, b := range suite {
			thr := tco.NodeThroughput(sut.Node, b.Kernel, offloadFor(sut.Node, b))
			opj := nodeOpsPerJoule(sut.Node, b)
			cell := BenchScore{
				Throughput: thr, Ratio: thr / baseT[bi],
				OpsPerJ: opj, EnergyRatio: opj / baseE[bi],
			}
			row[bi] = cell
			w := b.Weight
			if w <= 0 {
				w = 1
			}
			logSum += w * math.Log(cell.Ratio)
			logESum += w * math.Log(cell.EnergyRatio)
			wSum += w
		}
		res.Cells = append(res.Cells, row)
		res.Overall = append(res.Overall, math.Exp(logSum/wSum))
		res.OverallEnergy = append(res.OverallEnergy, math.Exp(logESum/wSum))
	}
	return res, nil
}

func offloadFor(n *hw.Node, b Benchmark) float64 {
	if len(n.Accels) == 0 {
		return 0
	}
	return b.OffloadFraction
}

// nodeOpsPerJoule prices energy assuming the deployment offloads for
// efficiency: the accelerator with the best ops/J takes the offloadable
// share (a 25 W FPGA beats a 290 W CPU on ops/J even when it is slower —
// the Catapult trade the roadmap describes). The throughput score is
// computed separately with throughput-optimal placement.
func nodeOpsPerJoule(n *hw.Node, b Benchmark) float64 {
	host := n.Host.OpsPerJoule(b.Kernel)
	if len(n.Accels) == 0 || b.OffloadFraction <= 0 {
		return host
	}
	best := host
	for _, d := range n.Accels {
		if e := d.OpsPerJoule(b.Kernel); e > best {
			best = e
		}
	}
	if best == host {
		return host
	}
	f := b.OffloadFraction
	// Harmonic mix: energy per op averages over the split work.
	return 1 / (f/best + (1-f)/host)
}

// Table renders the throughput-ratio matrix as the Recommendation-9
// side-by-side comparison.
func (r *Result) Table() *metrics.Table {
	headers := []string{"benchmark"}
	for _, s := range r.SUTs {
		headers = append(headers, s.Name)
	}
	t := metrics.NewTable(fmt.Sprintf("Suite scores (throughput ratio vs %s)", r.Baseline), headers...)
	for bi, b := range r.Suite {
		row := []string{b.Name}
		for si := range r.SUTs {
			row = append(row, fmt.Sprintf("%.2f", r.Cells[si][bi].Ratio))
		}
		t.AddRow(row...)
	}
	overall := []string{"OVERALL (geomean)"}
	for si := range r.SUTs {
		overall = append(overall, fmt.Sprintf("%.2f", r.Overall[si]))
	}
	t.AddRow(overall...)
	energy := []string{"ENERGY (geomean ops/J)"}
	for si := range r.SUTs {
		energy = append(energy, fmt.Sprintf("%.2f", r.OverallEnergy[si]))
	}
	t.AddRow(energy...)
	return t
}

// Ranking returns SUT names ordered by overall score, best first.
func (r *Result) Ranking() []string {
	type rank struct {
		name  string
		score float64
	}
	rs := make([]rank, len(r.SUTs))
	for i, s := range r.SUTs {
		rs[i] = rank{name: s.Name, score: r.Overall[i]}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].name < rs[j].name
	})
	names := make([]string, len(rs))
	for i, x := range rs {
		names[i] = x.name
	}
	return names
}
