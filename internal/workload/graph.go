package workload

import "repro/internal/sim"

// Graph is a directed graph in adjacency-list form, used by the PageRank
// building block and the graph-analytics benchmarks.
type Graph struct {
	N   int
	Adj [][]int32
}

// Edges returns the total edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// OutDegree returns the out-degree of node v.
func (g *Graph) OutDegree(v int) int { return len(g.Adj[v]) }

// RMAT generates a power-law directed graph with the recursive-matrix
// (R-MAT) method used by the Graph500 benchmark. n is rounded up to the next
// power of two internally, but the returned graph has exactly n nodes (edges
// landing outside are remapped by modulo).
func RMAT(seed uint64, n, edges int) *Graph {
	if n <= 0 {
		panic("workload: RMAT requires positive n")
	}
	rng := sim.NewRNG(seed)
	// Standard Graph500 partition probabilities.
	const a, b, c = 0.57, 0.19, 0.19
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	g := &Graph{N: n, Adj: make([][]int32, n)}
	for e := 0; e < edges; e++ {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << l
			case r < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		u, v = u%n, v%n
		g.Adj[u] = append(g.Adj[u], int32(v))
	}
	return g
}

// Ring returns a directed ring over n nodes (deterministic; useful for
// PageRank convergence tests where the stationary distribution is uniform).
func Ring(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]int32, n)}
	for i := 0; i < n; i++ {
		g.Adj[i] = []int32{int32((i + 1) % n)}
	}
	return g
}

// Star returns a star graph: every leaf points to the hub (node 0).
func Star(n int) *Graph {
	g := &Graph{N: n, Adj: make([][]int32, n)}
	for i := 1; i < n; i++ {
		g.Adj[i] = []int32{0}
	}
	return g
}
