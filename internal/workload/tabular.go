package workload

import (
	"fmt"

	"repro/internal/sim"
)

// SalesRow is one row of the synthetic star-schema fact table used by the
// SQL / analytics experiments (a TPC-H-flavoured "orders" shape).
type SalesRow struct {
	OrderID    int64
	CustomerID int64
	Region     string
	Product    string
	Quantity   int64
	Price      float64
	Discount   float64
	Year       int64
}

// Regions and Products are the dimension values used by the generator.
var (
	Regions  = []string{"EU-NORTH", "EU-SOUTH", "EU-WEST", "EU-EAST", "NA", "APAC"}
	Products = []string{"widget", "gadget", "sprocket", "gizmo", "doohickey", "contraption", "apparatus", "device"}
)

// Sales generates n fact rows over the given number of customers. Region
// popularity is skewed so group-by results are stable and non-trivial.
func Sales(seed uint64, n, customers int) []SalesRow {
	rng := sim.NewRNG(seed)
	regionZ := sim.NewZipf(rng, 0.8, len(Regions))
	prodZ := sim.NewZipf(rng, 0.5, len(Products))
	custZ := sim.NewZipf(rng, 0.9, customers)
	rows := make([]SalesRow, n)
	for i := range rows {
		q := int64(rng.Intn(20) + 1)
		rows[i] = SalesRow{
			OrderID:    int64(i + 1),
			CustomerID: int64(custZ.Next() + 1),
			Region:     Regions[regionZ.Next()],
			Product:    Products[prodZ.Next()],
			Quantity:   q,
			Price:      float64(int(rng.Range(100, 10000))) / 100,
			Discount:   float64(rng.Intn(30)) / 100,
			Year:       int64(2010 + rng.Intn(7)),
		}
	}
	return rows
}

// CustomerRow is one row of the synthetic customer dimension table.
type CustomerRow struct {
	CustomerID int64
	Name       string
	Segment    string
	Country    string
}

// Segments used by the customer generator.
var Segments = []string{"AUTOMOTIVE", "FINANCE", "HEALTH", "TELECOM", "ANALYTICS"}

// Countries used by the customer generator (European focus, per the paper).
var Countries = []string{"ES", "DE", "FR", "UK", "NL", "CH", "IT", "SE"}

// Customers generates the dimension table with n rows.
func Customers(seed uint64, n int) []CustomerRow {
	rng := sim.NewRNG(seed)
	rows := make([]CustomerRow, n)
	for i := range rows {
		rows[i] = CustomerRow{
			CustomerID: int64(i + 1),
			Name:       fmt.Sprintf("company-%04d", i+1),
			Segment:    Segments[rng.Intn(len(Segments))],
			Country:    Countries[rng.Intn(len(Countries))],
		}
	}
	return rows
}

// Points generates n points in dims dimensions drawn from k Gaussian
// clusters; used by the k-means building block. Returns the points and the
// true generating centers.
func Points(seed uint64, n, dims, k int) ([][]float64, [][]float64) {
	rng := sim.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for d := range centers[c] {
			centers[c][d] = rng.Range(-50, 50)
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[rng.Intn(k)]
		p := make([]float64, dims)
		for d := range p {
			p[d] = c[d] + rng.Normal(0, 2)
		}
		pts[i] = p
	}
	return pts, centers
}
