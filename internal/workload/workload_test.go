package workload

import (
	"testing"
	"testing/quick"
)

func TestKVTraceDeterministic(t *testing.T) {
	spec := KVTraceSpec{Keys: 1000, Ops: 500, Skew: 0.99, ReadRatio: 0.9, MeanValB: 256, Seed: 1}
	a := KVTrace(spec)
	b := KVTrace(spec)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at op %d", i)
		}
	}
}

func TestKVTraceShape(t *testing.T) {
	spec := KVTraceSpec{Keys: 100, Ops: 50000, Skew: 0.99, ReadRatio: 0.8, MeanValB: 512, Seed: 2}
	ops := KVTrace(spec)
	reads := 0
	counts := map[uint64]int{}
	lastT := int64(-1)
	for _, op := range ops {
		if op.Read {
			reads++
		}
		if op.Key >= 100 {
			t.Fatalf("key %d out of keyspace", op.Key)
		}
		if op.SizeB < 1 {
			t.Fatalf("non-positive value size %d", op.SizeB)
		}
		if op.TimeNS < lastT {
			t.Fatal("timestamps not monotone")
		}
		lastT = op.TimeNS
		counts[op.Key]++
	}
	ratio := float64(reads) / float64(len(ops))
	if ratio < 0.78 || ratio > 0.82 {
		t.Fatalf("read ratio = %v, want ~0.8", ratio)
	}
	if counts[0] <= counts[50] {
		t.Fatalf("popularity not skewed: key0=%d key50=%d", counts[0], counts[50])
	}
}

func TestSearchStreamTail(t *testing.T) {
	reqs := SearchStream(SearchStreamSpec{Requests: 20000, MeanCandidates: 100, TailAlpha: 2.1, Features: 64, Seed: 3})
	if len(reqs) != 20000 {
		t.Fatalf("len = %d", len(reqs))
	}
	sum, max := 0, 0
	for _, r := range reqs {
		if r.Candidates < 1 {
			t.Fatal("candidate count below 1")
		}
		sum += r.Candidates
		if r.Candidates > max {
			max = r.Candidates
		}
	}
	mean := float64(sum) / float64(len(reqs))
	if mean < 70 || mean > 140 {
		t.Fatalf("mean candidates = %v, want ~100", mean)
	}
	if max < 500 {
		t.Fatalf("tail too light: max = %d", max)
	}
}

func TestSearchStreamRejectsBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha <= 1")
		}
	}()
	SearchStream(SearchStreamSpec{Requests: 1, MeanCandidates: 10, TailAlpha: 1, Seed: 1})
}

func TestRecordStreamKeys(t *testing.T) {
	recs := RecordStream(4, 10000, 50, 0.9)
	keys := map[string]bool{}
	for _, r := range recs {
		keys[r.Key] = true
		if r.Tag < 0 || r.Tag >= 16 {
			t.Fatalf("tag %d out of range", r.Tag)
		}
	}
	if len(keys) == 0 || len(keys) > 50 {
		t.Fatalf("distinct keys = %d, want (0, 50]", len(keys))
	}
}

func TestCorpusZipfian(t *testing.T) {
	docs := Corpus(5, 100, 50, 1000)
	if len(docs) != 100 {
		t.Fatalf("docs = %d", len(docs))
	}
	freq := map[string]int{}
	total := 0
	for _, d := range docs {
		if len(d.Words) == 0 {
			t.Fatal("empty document")
		}
		for _, w := range d.Words {
			freq[w]++
			total++
		}
	}
	top := syntheticWord(0)
	if freq[top] < total/100 {
		t.Fatalf("head word appears %d of %d times; expected Zipf head", freq[top], total)
	}
}

func TestSyntheticWordUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		w := syntheticWord(i)
		if seen[w] {
			t.Fatalf("duplicate word %q at id %d", w, i)
		}
		seen[w] = true
	}
}

func TestRMATProperties(t *testing.T) {
	g := RMAT(7, 1024, 8192)
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	if g.Edges() != 8192 {
		t.Fatalf("edges = %d", g.Edges())
	}
	for u, adj := range g.Adj {
		for _, v := range adj {
			if v < 0 || int(v) >= g.N {
				t.Fatalf("edge %d->%d out of range", u, v)
			}
		}
	}
	// Power-law-ish: max out-degree should dwarf the mean (8).
	max := 0
	for v := 0; v < g.N; v++ {
		if d := g.OutDegree(v); d > max {
			max = d
		}
	}
	if max < 32 {
		t.Fatalf("max degree = %d; R-MAT should be skewed", max)
	}
}

func TestRingAndStar(t *testing.T) {
	r := Ring(10)
	if r.Edges() != 10 {
		t.Fatalf("ring edges = %d", r.Edges())
	}
	for i := 0; i < 10; i++ {
		if int(r.Adj[i][0]) != (i+1)%10 {
			t.Fatalf("ring wiring broken at %d", i)
		}
	}
	s := Star(10)
	if s.Edges() != 9 {
		t.Fatalf("star edges = %d", s.Edges())
	}
	if s.OutDegree(0) != 0 {
		t.Fatal("hub should have no out-edges")
	}
}

func TestSalesRows(t *testing.T) {
	rows := Sales(6, 10000, 500)
	if len(rows) != 10000 {
		t.Fatalf("rows = %d", len(rows))
	}
	regions := map[string]int{}
	for _, r := range rows {
		if r.Quantity < 1 || r.Quantity > 20 {
			t.Fatalf("quantity %d out of range", r.Quantity)
		}
		if r.Price < 1 || r.Price > 100 {
			t.Fatalf("price %v out of range", r.Price)
		}
		if r.Discount < 0 || r.Discount >= 0.3 {
			t.Fatalf("discount %v out of range", r.Discount)
		}
		if r.Year < 2010 || r.Year > 2016 {
			t.Fatalf("year %d out of range", r.Year)
		}
		if r.CustomerID < 1 || r.CustomerID > 500 {
			t.Fatalf("customer %d out of range", r.CustomerID)
		}
		regions[r.Region]++
	}
	if len(regions) != len(Regions) {
		t.Fatalf("saw %d regions, want %d", len(regions), len(Regions))
	}
}

func TestCustomersJoinableWithSales(t *testing.T) {
	cust := Customers(6, 500)
	if len(cust) != 500 {
		t.Fatalf("customers = %d", len(cust))
	}
	ids := map[int64]bool{}
	for _, c := range cust {
		ids[c.CustomerID] = true
	}
	for _, s := range Sales(6, 1000, 500) {
		if !ids[s.CustomerID] {
			t.Fatalf("sale references missing customer %d", s.CustomerID)
		}
	}
}

func TestPointsClusters(t *testing.T) {
	pts, centers := Points(9, 2000, 3, 4)
	if len(pts) != 2000 || len(centers) != 4 {
		t.Fatalf("pts=%d centers=%d", len(pts), len(centers))
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatalf("dims = %d", len(p))
		}
	}
}

func TestGeneratorsDeterministicProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		a := RecordStream(seed, 100, 10, 0.5)
		b := RecordStream(seed, 100, 10, 0.5)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
