// Package workload generates the deterministic synthetic workloads used by
// every experiment: key-value traces with Zipfian popularity, search request
// streams, text corpora, relational tables, power-law graphs and record
// streams. The paper's evaluation substrate (proprietary hyperscaler traces)
// is unavailable, so these generators are the documented substitution: their
// shapes (skew, burstiness, record sizes) follow the values the Big Data
// literature reports for the corresponding workload classes.
package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// KVOp is a single key-value operation in a trace.
type KVOp struct {
	Key    uint64
	Read   bool
	SizeB  int // value size in bytes
	TimeNS int64
}

// KVTraceSpec configures a Zipfian key-value trace in the style of the
// YCSB/Twitter cache workloads used throughout Big Data systems papers.
type KVTraceSpec struct {
	Keys      int     // size of the keyspace
	Ops       int     // number of operations
	Skew      float64 // Zipf exponent (0.99 is the YCSB default)
	ReadRatio float64 // fraction of reads
	MeanValB  int     // mean value size in bytes
	Seed      uint64
}

// KVTrace materializes the trace described by the spec.
func KVTrace(spec KVTraceSpec) []KVOp {
	if spec.Keys <= 0 || spec.Ops < 0 {
		panic("workload: KVTrace requires positive Keys and non-negative Ops")
	}
	rng := sim.NewRNG(spec.Seed)
	z := sim.NewZipf(rng, spec.Skew, spec.Keys)
	ops := make([]KVOp, spec.Ops)
	t := int64(0)
	for i := range ops {
		t += int64(rng.Exp(1e-3)) // ~1M ops/s arrival spacing in ns
		size := int(rng.Lognormal(logMeanForMean(float64(spec.MeanValB)), 0.5))
		if size < 1 {
			size = 1
		}
		ops[i] = KVOp{
			Key:    uint64(z.Next()),
			Read:   rng.Bool(spec.ReadRatio),
			SizeB:  size,
			TimeNS: t,
		}
	}
	return ops
}

// logMeanForMean returns mu such that a Lognormal(mu, 0.5) has the given
// mean: mean = exp(mu + sigma^2/2).
func logMeanForMean(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	const sigma = 0.5
	return math.Log(mean) - sigma*sigma/2
}

// SearchRequest models one request into a ranking service (the Catapult
// experiment): a number of candidate documents to score and a feature
// vector width.
type SearchRequest struct {
	ID         int
	Candidates int // documents the ranker must score
	Features   int // features per document
}

// SearchStreamSpec configures a search request stream. Candidate counts are
// heavy-tailed (Pareto): most queries touch few documents, some touch many —
// exactly the shape that produces long tail latency on CPUs.
type SearchStreamSpec struct {
	Requests       int
	MeanCandidates float64
	TailAlpha      float64 // Pareto shape; ~2.1 gives a pronounced tail
	Features       int
	Seed           uint64
}

// SearchStream materializes the stream.
func SearchStream(spec SearchStreamSpec) []SearchRequest {
	rng := sim.NewRNG(spec.Seed)
	if spec.TailAlpha <= 1 {
		panic("workload: TailAlpha must exceed 1 for a finite mean")
	}
	// Pareto mean = xm * alpha/(alpha-1); solve xm for the requested mean.
	xm := spec.MeanCandidates * (spec.TailAlpha - 1) / spec.TailAlpha
	out := make([]SearchRequest, spec.Requests)
	for i := range out {
		c := int(rng.Pareto(xm, spec.TailAlpha))
		if c < 1 {
			c = 1
		}
		out[i] = SearchRequest{ID: i, Candidates: c, Features: spec.Features}
	}
	return out
}

// Record is a generic schema-less record for streaming experiments.
type Record struct {
	Key   string
	Value float64
	Tag   int
}

// RecordStream produces n records with k distinct keys, Zipf-skewed.
func RecordStream(seed uint64, n, k int, skew float64) []Record {
	rng := sim.NewRNG(seed)
	z := sim.NewZipf(rng, skew, k)
	recs := make([]Record, n)
	for i := range recs {
		id := z.Next()
		recs[i] = Record{
			Key:   fmt.Sprintf("key-%05d", id),
			Value: rng.Range(0, 100),
			Tag:   id % 16,
		}
	}
	return recs
}

// Doc is a synthetic text document.
type Doc struct {
	ID    int
	Words []string
}

// Corpus generates docs synthetic documents with the given mean length over
// a vocabulary of vocab words with Zipfian usage — the standard model for
// natural text (word frequencies follow Zipf's law).
func Corpus(seed uint64, docs, meanLen, vocab int) []Doc {
	rng := sim.NewRNG(seed)
	z := sim.NewZipf(rng, 1.05, vocab)
	words := make([]string, vocab)
	for i := range words {
		words[i] = syntheticWord(i)
	}
	out := make([]Doc, docs)
	for d := range out {
		n := int(rng.Normal(float64(meanLen), float64(meanLen)/4))
		if n < 1 {
			n = 1
		}
		ws := make([]string, n)
		for i := range ws {
			ws[i] = words[z.Next()]
		}
		out[d] = Doc{ID: d, Words: ws}
	}
	return out
}

// syntheticWord derives a pronounceable token from an integer id, so corpora
// are readable in debug output while remaining deterministic.
func syntheticWord(id int) string {
	consonants := "bcdfghjklmnpqrstvwz"
	vowels := "aeiou"
	var b []byte
	n := id
	for i := 0; i < 3; i++ {
		b = append(b, consonants[n%len(consonants)])
		n /= len(consonants)
		b = append(b, vowels[n%len(vowels)])
		n /= len(vowels)
	}
	return string(b)
}
