package lifecycle

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
)

func newTestManager(t *testing.T, replication int, plan *FaultPlan) *Manager {
	t.Helper()
	c, err := dist.NewCluster("leafspine", 4)
	if err != nil {
		t.Fatal(err)
	}
	bytes := func() []float64 { return []float64{1000, 2000, 3000, 4000} }
	m, err := NewManager(dist.NewFabric(c), replication, plan, bytes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPlacementStaticIdentity: with every host live, the elastic
// placement must equal the static one — shard s's primary is worker s —
// at every replication factor. This is what keeps fault-free runs
// bit-identical to the pre-lifecycle engine.
func TestPlacementStaticIdentity(t *testing.T) {
	for _, r := range []int{1, 2, 3, 4} {
		m := newTestManager(t, r, nil)
		c := m.fab.Cluster()
		for s := 0; s < m.Shards(); s++ {
			w, err := m.PrimaryWorker(s)
			if err != nil {
				t.Fatal(err)
			}
			if w != s {
				t.Fatalf("replication %d: shard %d primary = worker %d, want %d", r, s, w, s)
			}
			if got := m.hostFor(s); got != c.Workers[s] {
				t.Fatalf("replication %d: shard %d resolves to host %d, want %d", r, s, got, c.Workers[s])
			}
		}
		if got := m.hostFor(dist.Coordinator); got != c.Coord {
			t.Fatalf("coordinator resolves to %d, want %d", got, c.Coord)
		}
	}
}

// TestReplicationBounds: R is clamped below and rejected above the
// shard count.
func TestReplicationBounds(t *testing.T) {
	if m := newTestManager(t, 0, nil); m.Replication() != 1 {
		t.Fatalf("replication 0 clamps to 1, got %d", m.Replication())
	}
	c, err := dist.NewCluster("leafspine", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewManager(dist.NewFabric(c), 5, nil, nil); err == nil {
		t.Fatal("replication 5 over 4 shards must be rejected")
	}
}

// TestDrainRestoreJoin: draining a worker moves its shards' bytes over
// the fabric and re-primaries them elsewhere; restore moves them back;
// join annexes a spare host as a fresh worker.
func TestDrainRestoreJoin(t *testing.T) {
	m := newTestManager(t, 2, nil)
	if err := m.DrainWorker(1); err != nil {
		t.Fatal(err)
	}
	h := m.Health()
	if h.Drained != 1 || h.Live != 3 || h.RebalancedBytes <= 0 || h.RebalanceSeconds <= 0 {
		t.Fatalf("drain health: %+v", h)
	}
	if w, err := m.PrimaryWorker(1); err != nil || w == 1 {
		t.Fatalf("shard 1 primary after drain = %d, %v; want a live worker != 1", w, err)
	}
	if err := m.DrainWorker(1); err == nil {
		t.Fatal("double drain must be refused")
	}

	if err := m.RestoreWorker(1); err != nil {
		t.Fatal(err)
	}
	if w, err := m.PrimaryWorker(1); err != nil || w != 1 {
		t.Fatalf("shard 1 primary after restore = %d, %v; want 1", w, err)
	}

	before := m.Health()
	nw, err := m.JoinHost()
	if err != nil {
		t.Fatal(err)
	}
	after := m.Health()
	if nw != 4 || after.Workers != before.Workers+1 || after.Spares != before.Spares-1 {
		t.Fatalf("join: new worker %d, health %+v -> %+v", nw, before, after)
	}
	if after.Generation <= before.Generation {
		t.Fatalf("join did not bump the generation: %d -> %d", before.Generation, after.Generation)
	}
}

// TestDrainLastLiveRefused: the last live worker cannot be drained —
// there would be nowhere to put the shards.
func TestDrainLastLiveRefused(t *testing.T) {
	m := newTestManager(t, 2, nil)
	for _, w := range []int{0, 1, 2} {
		if err := m.DrainWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DrainWorker(3); err == nil {
		t.Fatal("draining the last live worker must be refused")
	}
}

// TestKillRepairsReplication: killing a worker under replication 2
// re-primaries its shard onto a surviving replica, re-replicates to
// restore R, and reports the remapped shard; under replication 1 the
// same kill loses the shard and fails loudly.
func TestKillRepairsReplication(t *testing.T) {
	m := newTestManager(t, 2, nil)
	deadNode, remapped, err := m.Kill(1)
	if err != nil {
		t.Fatal(err)
	}
	if wantNode := m.fab.Cluster().Workers[1]; deadNode != wantNode {
		t.Fatalf("dead node %d, want %d", deadNode, wantNode)
	}
	if !reflect.DeepEqual(remapped, []int{1}) {
		t.Fatalf("remapped %v, want [1]", remapped)
	}
	h := m.Health()
	if h.Dead != 1 || h.Repairs == 0 || h.RepairBytes <= 0 {
		t.Fatalf("kill health: %+v", h)
	}
	if w, err := m.PrimaryWorker(1); err != nil || w == 1 {
		t.Fatalf("shard 1 primary after kill = %d, %v", w, err)
	}

	solo := newTestManager(t, 1, nil)
	if _, _, err := solo.Kill(1); err == nil || !strings.Contains(err.Error(), "lost every replica") {
		t.Fatalf("replication-1 kill: %v, want lost-replica error", err)
	}
}

// TestDegradeBounds: degrading an unknown worker fails; a live one
// succeeds and bumps nothing but the topology.
func TestDegradeBounds(t *testing.T) {
	m := newTestManager(t, 2, nil)
	if err := m.DegradeWorker(9, 10); err == nil {
		t.Fatal("degrading an out-of-range worker must fail")
	}
	if err := m.DegradeWorker(2, 10); err != nil {
		t.Fatal(err)
	}
}

// TestClaimEventsFireOnce: a fault event is claimed by the first query
// reaching its ordinal and never fires again.
func TestClaimEventsFireOnce(t *testing.T) {
	plan := &FaultPlan{Events: []Event{
		{Kind: EventKill, Worker: 1, Phase: 0, Frac: 0.5},
		{Kind: EventSlow, Worker: 2, Phase: 0, Factor: 4},
	}}
	m := newTestManager(t, 2, plan)
	if evs := m.claimPhaseEvents(0); len(evs) != 1 || evs[0].Kind != EventKill {
		t.Fatalf("first claim: %+v", evs)
	}
	if evs := m.claimPhaseEvents(0); len(evs) != 0 {
		t.Fatalf("second claim re-fired: %+v", evs)
	}
	if slow := m.claimSlowEvents(0); len(slow) != 1 || slow[2] != 4 {
		t.Fatalf("slow claim: %+v", slow)
	}
	if slow := m.claimSlowEvents(0); len(slow) != 0 {
		t.Fatalf("slow re-fired: %+v", slow)
	}
	if h := m.Health(); h.EventsFired != 2 || h.EventsTotal != 2 {
		t.Fatalf("events health: %+v", h)
	}
}

// TestParsePlanRoundTrip: the grammar parses, bounds-checks, and
// round-trips through String.
func TestParsePlanRoundTrip(t *testing.T) {
	spec := "kill:1@0:0.5,slow:2@1:4,degrade:0@2:10,partition:3@0"
	plan, err := ParsePlan(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.String(); got != spec {
		t.Fatalf("round-trip: %q != %q", got, spec)
	}
	if p, err := ParsePlan("", 4); p != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}
	for _, bad := range []string{"kill:9@0", "kill:1", "explode:1@0", "slow:1@0:-2", "seed:x"} {
		if _, err := ParsePlan(bad, 4); err == nil {
			t.Fatalf("%q must be rejected", bad)
		}
	}
}

// TestSeededDeterministic: the same seed yields the same schedule.
func TestSeededDeterministic(t *testing.T) {
	a, b := Seeded(7, 4), Seeded(7, 4)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatalf("seed 7 diverged:\n%+v\n%+v", a.Events, b.Events)
	}
	p, err := ParsePlan("seed:7", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Events, a.Events) {
		t.Fatalf("seed:7 spec != Seeded(7): %+v vs %+v", p.Events, a.Events)
	}
	for _, ev := range a.Events {
		if ev.Worker < 0 || ev.Worker >= 4 {
			t.Fatalf("seeded worker out of range: %+v", ev)
		}
	}
}
