package lifecycle

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/relational"
)

// errSpeculationLost cancels the losing attempt of a speculative pair.
// It never escapes the Guard: the loser's error is expected and dropped.
var errSpeculationLost = fmt.Errorf("lifecycle: speculative duplicate lost the race")

// Guard threads one query's execution through the elastic cluster view:
// it resolves shard endpoints to live replicas, claims the fault plan's
// events as the query's phases reach their ordinals, and runs the
// recovery those faults oblige — re-shipped data, re-dispatched
// fragments, speculative duplicates — measuring every bit of it into the
// query's stats. One Guard per QueryRun; its methods are called from the
// query's own goroutine, phases in order.
type Guard struct {
	m         *Manager
	qr        *dist.QueryRun
	phase     int
	fragRound int
}

// NewGuard wires a query run into the elastic view: the Guard installs
// itself as the run's host resolver (flows follow live primaries) and
// intercepts its movement phases and fragment rounds.
func (m *Manager) NewGuard(qr *dist.QueryRun) *Guard {
	g := &Guard{m: m, qr: qr}
	qr.SetHostResolver(g.HostFor)
	return g
}

// HostFor resolves a Transfer endpoint to the host node of the shard's
// current primary replica (the coordinator resolves to itself).
func (g *Guard) HostFor(i int) int { return g.m.hostFor(i) }

// RunPhase runs one bulk movement phase under fault injection: degrade
// and partition events scheduled at this phase's ordinal land before the
// flows are admitted (the phase runs over the degraded fabric), and a
// kill event lands Frac through the phase — the dead host's data is
// re-shipped from replicas in a "recover:" phase and the recovery cost
// is measured into the query's stats.
func (g *Guard) RunPhase(name string, transfers []dist.Transfer, class string, weightScale float64) error {
	idx := g.phase
	g.phase++
	evs := g.m.claimPhaseEvents(idx)
	if err := g.applyLinkFaults(evs); err != nil {
		return err
	}
	_, err := g.qr.RunPhaseMeasured(name, transfers, class, weightScale)
	if err != nil {
		return err
	}
	return g.applyKills(name, evs, func(ev Event, deadNode int) ([]dist.Transfer, float64) {
		return lostTransfers(transfers, g.preResolve(transfers), deadNode, killFrac(ev))
	})
}

// RunPipelined runs one pipelined movement phase under fault injection.
// A kill at this ordinal lands at the chunk boundary nearest Frac: data
// sent to the dead host in any chunk is lost (the receiver died with
// it), data from the dead host is lost for chunks at or past the death
// point (earlier chunks were already delivered and consumed).
func (g *Guard) RunPipelined(name string, chunks []dist.Chunk, class string, weightScale float64, consume func(k int) error) error {
	idx := g.phase
	g.phase++
	evs := g.m.claimPhaseEvents(idx)
	if err := g.applyLinkFaults(evs); err != nil {
		return err
	}
	if err := g.qr.RunPipelined(name, chunks, class, weightScale, consume); err != nil {
		return err
	}
	return g.applyKills(name, evs, func(ev Event, deadNode int) ([]dist.Transfer, float64) {
		k0 := int(killFrac(ev) * float64(len(chunks)))
		if k0 >= len(chunks) {
			k0 = len(chunks) - 1
		}
		var lost []dist.Transfer
		lostBytes := 0.0
		for k, ch := range chunks {
			pre := g.preResolve(ch.Transfers)
			frac := 0.0 // chunks at/past the death point delivered nothing from the dead host
			if k < k0 {
				frac = 1 // earlier chunks were already delivered and consumed
			}
			l, b := lostTransfers(ch.Transfers, pre, deadNode, frac)
			lost = append(lost, l...)
			lostBytes += b
		}
		return lost, lostBytes
	})
}

// preResolve snapshots the transfers' endpoint resolution under current
// (pre-kill) membership, so the Guard can tell which flows touched a
// host after it is marked dead.
func (g *Guard) preResolve(ts []dist.Transfer) [][2]int {
	pre := make([][2]int, len(ts))
	for i, t := range ts {
		pre[i] = [2]int{g.HostFor(t.Src), g.HostFor(t.Dst)}
	}
	return pre
}

func killFrac(ev Event) float64 {
	if ev.Frac <= 0 || ev.Frac > 1 {
		return 0.5
	}
	return ev.Frac
}

// lostTransfers selects the transfers a host death invalidates, given
// the pre-kill endpoint resolution. A transfer *into* the dead host
// must re-ship in full — the receiver died holding it. A transfer *out
// of* the dead host was frac-complete at death, so (1−frac) of it must
// re-ship from a replica.
func lostTransfers(ts []dist.Transfer, pre [][2]int, deadNode int, frac float64) ([]dist.Transfer, float64) {
	var lost []dist.Transfer
	bytes := 0.0
	for i, t := range ts {
		if t.Bytes <= 0 || pre[i][0] == pre[i][1] {
			continue
		}
		switch deadNode {
		case pre[i][1]:
			lost = append(lost, t)
			bytes += t.Bytes
		case pre[i][0]:
			if rem := t.Bytes * (1 - frac); rem > 0 {
				lost = append(lost, dist.Transfer{Src: t.Src, Dst: t.Dst, Bytes: rem})
				bytes += rem
			}
		}
	}
	return lost, bytes
}

// applyLinkFaults lands degrade/partition events before a phase runs.
func (g *Guard) applyLinkFaults(evs []Event) error {
	for _, ev := range evs {
		switch ev.Kind {
		case EventDegrade:
			if err := g.m.DegradeWorker(ev.Worker, ev.Factor); err != nil {
				return err
			}
		case EventPartition:
			if err := g.m.DegradeWorker(ev.Worker, PartitionFactor); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyKills lands kill events after their phase ran: the worker dies,
// the Manager repairs replication, and the query re-ships whatever the
// phase lost — computed by the select callback against the *pre-kill*
// resolution — under the new placement, charging the recovery network
// time plus the modeled re-derivation of the lost bytes.
func (g *Guard) applyKills(name string, evs []Event, selectLost func(Event, int) ([]dist.Transfer, float64)) error {
	for _, ev := range evs {
		if ev.Kind != EventKill {
			continue
		}
		// Resolve the victim and the lost flows against *pre-kill*
		// membership, then mark it dead.
		deadNode, err := g.m.NodeOf(ev.Worker)
		if err != nil {
			return fmt.Errorf("lifecycle: phase %s: %w", name, err)
		}
		lost, lostBytes := selectLost(ev, deadNode)
		_, remapped, err := g.m.Kill(ev.Worker)
		if err != nil {
			return fmt.Errorf("lifecycle: phase %s: %w", name, err)
		}
		recSec := 0.0
		if len(lost) > 0 {
			recSec, err = g.qr.RunPhaseMeasured("recover:"+name, lost, "", 0)
			if err != nil {
				return err
			}
		}
		g.qr.AddRecovery(recSec+lostBytes/dist.ChunkComputeBytesPerSec, len(remapped), 0)
	}
	return nil
}

// RunFragments executes one shard-local fragment per shard, building
// each operator tree via build (callable more than once per shard — a
// speculative duplicate rebuilds its own tree). Without a slow event at
// this round's ordinal it delegates to dist.RunFragments unchanged.
// With one, the straggling shards run as speculative pairs: the primary
// attempt is delayed Factor×StragglerDelay (the injected straggle), a
// watchdog launches a duplicate after SpecThreshold, the first result
// wins, and the loser is cancelled and joined before returning — no
// goroutine outlives the call. Wins and the duplicated compute are
// measured into the query's stats.
func (g *Guard) RunFragments(name string, n, workers int, build func(int) (relational.BatchOp, error)) ([]*relational.Relation, error) {
	round := g.fragRound
	g.fragRound++
	slow := g.m.claimSlowEvents(round)
	slowShards := map[int]float64{}
	for s := 0; s < n; s++ {
		w, err := g.m.PrimaryWorker(s)
		if err != nil {
			return nil, err
		}
		if f, ok := slow[w]; ok {
			slowShards[s] = f
		}
	}
	if len(slowShards) == 0 {
		frags := make([]relational.BatchOp, n)
		for i := range frags {
			op, err := build(i)
			if err != nil {
				return nil, err
			}
			frags[i] = op
		}
		return dist.RunFragments(name, frags, workers)
	}
	outs := make([]*relational.Relation, n)
	errs := make([]error, n)
	var mu sync.Mutex
	wins := 0
	dupBytes := 0.0
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			factor, isSlow := slowShards[s]
			if !isSlow {
				outs[s], errs[s] = runAttempt(name, s, workers, build, 0, nil)
				return
			}
			rel, won, err := g.speculate(name, s, workers, build, factor)
			outs[s], errs[s] = rel, err
			if err == nil {
				mu.Lock()
				if won {
					wins++
				}
				dupBytes += rel.EncodedBytes()
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	g.qr.AddRecovery(dupBytes/dist.ChunkComputeBytesPerSec, 0, wins)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}

// runAttempt builds and drains one fragment attempt. delay gates the
// drain (the injected straggle) and tok cancels both the gate and the
// stream at the next batch boundary.
func runAttempt(name string, s, workers int, build func(int) (relational.BatchOp, error), delay time.Duration, tok *relational.CancelToken) (*relational.Relation, error) {
	op, err := build(s)
	if err != nil {
		return nil, err
	}
	if delay > 0 {
		gate := make(chan struct{})
		var once sync.Once
		if tok != nil {
			tok.OnCancel(func() { once.Do(func() { close(gate) }) })
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-gate:
			t.Stop()
			return nil, tok.Err()
		}
	}
	if tok != nil {
		op = relational.GuardBatch(op, tok)
	}
	return relational.Collect(relational.RowsOf(relational.NewExchange(op, workers)), name)
}

// speculate races a straggling primary attempt against a duplicate
// launched after the speculation threshold: first result wins, the
// loser is cancelled and joined. won reports whether the duplicate won.
func (g *Guard) speculate(name string, s, workers int, build func(int) (relational.BatchOp, error), factor float64) (rel *relational.Relation, won bool, err error) {
	type attempt struct {
		rel    *relational.Relation
		err    error
		backup bool
	}
	primTok, backTok := relational.NewCancelToken(), relational.NewCancelToken()
	delay := time.Duration(float64(g.m.plan.stragglerDelay()) * factor)
	ch := make(chan attempt, 2)
	go func() {
		r, e := runAttempt(name, s, workers, build, delay, primTok)
		ch <- attempt{r, e, false}
	}()
	watchdog := time.NewTimer(g.m.plan.specThreshold())
	var first attempt
	select {
	case first = <-ch:
		// The "straggler" beat the threshold after all — no duplicate.
		watchdog.Stop()
		return first.rel, false, first.err
	case <-watchdog.C:
		go func() {
			r, e := runAttempt(name, s, workers, build, 0, backTok)
			ch <- attempt{r, e, true}
		}()
		first = <-ch
	}
	if first.backup {
		primTok.Cancel(errSpeculationLost)
	} else {
		backTok.Cancel(errSpeculationLost)
	}
	second := <-ch // join the loser: no goroutine outlives the call
	winner := first
	if first.err != nil && second.err == nil {
		winner = second
	}
	if winner.err != nil {
		return nil, false, winner.err
	}
	return winner.rel, winner.backup, nil
}
