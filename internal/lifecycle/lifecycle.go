// Package lifecycle is the cluster-membership and fault subsystem of the
// distributed engine: it fronts the static dist.Cluster with an elastic
// view in which worker hosts join, drain, and die at runtime, shards
// carry a replication factor R (each shard's data lives on R distinct
// live hosts), and a deterministic fault injector drives recovery paths
// that the failure-free engine never exercises.
//
// The Manager owns membership. Placement is deterministic: shard s's
// replicas are the first R live workers walking the worker ring from
// index s, and its primary — the host that executes the shard's
// fragments and anchors its flows — is the first of them. With every
// host live this degenerates to the static placement (replica 0 of
// shard s is worker s), so a fault-free cluster at any replication
// factor replays the static engine bit-identically. Membership changes
// recompute placement, and every byte the new placement obliges to move
// — drain evacuations, join rebalances, post-death re-replication — is
// charged to the shared netsim fabric as ordinary flows under its own
// QoS class ("rebalance"/"repair"), admitted as eager sub-rounds so an
// in-flight query is never held at the barrier waiting for background
// movement.
//
// Queries see the elastic view through a Guard (one per query run),
// which installs itself as the QueryRun's host resolver and intercepts
// every movement phase and fragment round. The Guard is where injected
// faults land: a host death mid-phase re-dispatches the dead host's
// fragments to a surviving replica and re-ships the lost bytes from
// replicas ("recover:" phases); a straggling fragment past the
// speculation threshold gets a duplicate execution with
// first-result-wins and loser cancellation; link degradation and
// partitions mutate the live topology under the admission lock. All
// recovery work is measured into QueryStats (RecoverySeconds,
// RetriedFragments, SpeculativeWins) beside Net/Compute/Spill — the
// resilience cost the cloud-optimization literature prices as a
// first-class objective, made visible per query.
package lifecycle

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/topo"
)

// PartitionFactor is the link-speed divisor a partition event applies to
// the target host's access links. A partition cannot zero the speed —
// in-flight flows over a zero-capacity link would never complete and the
// admission round would wedge — so it degrades by a factor large enough
// that the cost dominates any phase that still crosses the cut.
const PartitionFactor = 1000

// hostState is the lifecycle state of one worker slot.
type hostState int

const (
	stateLive hostState = iota
	// stateDrained marks an evacuated host: alive (it can source copies)
	// but holding no replicas and running no fragments.
	stateDrained
	// stateDead marks a failed host: its data is gone and it can never
	// source or sink anything again.
	stateDead
)

// Manager is the elastic-membership view over one dist.Fabric. It is
// safe for concurrent use; one Manager serves every query of an engine.
type Manager struct {
	mu          sync.Mutex
	fab         *dist.Fabric
	c           *dist.Cluster
	replication int
	plan        *FaultPlan
	shardBytes  func() []float64

	// hosts maps worker index to host node ID; state is parallel to it.
	// The first Shards() worker indexes are the static placement; JoinHost
	// appends annexed spare hosts.
	hosts  []int
	state  []hostState
	spares []int

	gen   int
	fired []bool

	rebalancedBytes  float64
	rebalanceSeconds float64
	repairBytes      float64
	repairSeconds    float64
	repairs          int
}

// NewManager builds the elastic view over fab with the given replication
// factor (values below 1 mean 1) and fault plan (nil injects nothing).
// shardBytes, when non-nil, reports the current per-shard resident bytes
// so membership changes can price their data movement; nil charges
// rebalances as zero-byte (placement still moves).
func NewManager(fab *dist.Fabric, replication int, plan *FaultPlan, shardBytes func() []float64) (*Manager, error) {
	c := fab.Cluster()
	if replication < 1 {
		replication = 1
	}
	if replication > c.Shards() {
		return nil, fmt.Errorf("lifecycle: replication %d exceeds %d workers", replication, c.Shards())
	}
	m := &Manager{
		fab:         fab,
		c:           c,
		replication: replication,
		plan:        plan,
		shardBytes:  shardBytes,
		hosts:       append([]int(nil), c.Workers...),
		state:       make([]hostState, len(c.Workers)),
	}
	if plan != nil {
		m.fired = make([]bool, len(plan.Events))
	}
	// Spare hosts: topology hosts carrying neither the coordinator nor a
	// worker, available to JoinHost.
	used := map[int]bool{c.Coord: true}
	for _, w := range c.Workers {
		used[w] = true
	}
	for _, h := range c.Net.Hosts() {
		if !used[h] {
			m.spares = append(m.spares, h)
		}
	}
	return m, nil
}

// Replication returns the configured replication factor.
func (m *Manager) Replication() int { return m.replication }

// Shards returns the logical shard count (fixed for the cluster's life;
// hosts are elastic, shards are not).
func (m *Manager) Shards() int { return m.c.Shards() }

// replicasLocked returns the worker indexes holding shard s's replicas
// under current membership: the first R live workers walking the ring
// from index s. Fewer than R live workers yields a short (degraded)
// set; zero live workers yields an empty one.
func (m *Manager) replicasLocked(s int) []int {
	var out []int
	n := len(m.hosts)
	for off := 0; off < n && len(out) < m.replication; off++ {
		w := (s + off) % n
		if m.state[w] == stateLive {
			out = append(out, w)
		}
	}
	return out
}

// placementLocked snapshots every shard's replica set.
func (m *Manager) placementLocked() [][]int {
	out := make([][]int, m.c.Shards())
	for s := range out {
		out[s] = m.replicasLocked(s)
	}
	return out
}

// PrimaryWorker returns the worker index executing shard s's fragments
// under current membership, or an error when every replica is dead.
func (m *Manager) PrimaryWorker(s int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	reps := m.replicasLocked(s)
	if len(reps) == 0 {
		return -1, fmt.Errorf("lifecycle: shard %d has no live replica (replication %d)", s, m.replication)
	}
	return reps[0], nil
}

// hostFor resolves a Transfer endpoint (shard index or dist.Coordinator)
// to a host node ID under current membership. A shard with no live
// replica falls back to its static host — the query is already failing
// through Kill's error by then, the resolver just must not panic.
func (m *Manager) hostFor(i int) int {
	if i == dist.Coordinator {
		return m.c.Coord
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	reps := m.replicasLocked(i)
	if len(reps) == 0 {
		return m.c.Workers[i]
	}
	return m.hosts[reps[0]]
}

// NodeOf maps a worker index to its host node ID.
func (m *Manager) NodeOf(w int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nodeOfLocked(w)
}

// nodeOfLocked maps a worker index to its host node ID.
func (m *Manager) nodeOfLocked(w int) (int, error) {
	if w < 0 || w >= len(m.hosts) {
		return -1, fmt.Errorf("lifecycle: worker %d out of range [0,%d)", w, len(m.hosts))
	}
	return m.hosts[w], nil
}

// shardBytesLocked snapshots the per-shard resident bytes (zeros without
// a provider). Called with m.mu held; the provider must not call back
// into the Manager.
func (m *Manager) shardBytesLocked() []float64 {
	if m.shardBytes == nil {
		return make([]float64, m.c.Shards())
	}
	b := m.shardBytes()
	if len(b) < m.c.Shards() {
		b = append(b, make([]float64, m.c.Shards()-len(b))...)
	}
	return b
}

// movementLocked diffs two placements and returns the transfers (in host
// node ID space) that materialize the new one: every shard replica
// present in neu but not old receives the shard's bytes from a
// still-live member of the old set (dead workers cannot source; that
// filtering is the caller's via the old placement it passes).
func (m *Manager) movementLocked(old, neu [][]int, bytes []float64) []dist.Transfer {
	var out []dist.Transfer
	for s := range neu {
		src := -1
		for _, w := range old[s] {
			if m.state[w] != stateDead {
				src = w
				break
			}
		}
		if src < 0 {
			continue // nothing left to copy from; Kill reports the loss
		}
		for _, w := range neu[s] {
			if !containsWorker(old[s], w) {
				out = append(out, dist.Transfer{Src: m.hosts[src], Dst: m.hosts[w], Bytes: bytes[s]})
			}
		}
	}
	return out
}

func containsWorker(ws []int, w int) bool {
	for _, x := range ws {
		if x == w {
			return true
		}
	}
	return false
}

// charge runs the movement transfers as real flows on the shared fabric
// under the given QoS class, admitted as an eager sub-round so in-flight
// queries are never parked waiting for background movement. Transfers
// are in host node ID space (identity resolver). It returns the bytes
// moved and the simulated seconds. Must be called without m.mu held.
func (m *Manager) charge(name, class string, ts []dist.Transfer) (float64, float64, error) {
	bytes := 0.0
	for _, t := range ts {
		bytes += t.Bytes
	}
	if len(ts) == 0 || bytes <= 0 {
		return 0, 0, nil
	}
	qr := m.fab.NewQueryQoS(nil, class, 0)
	qr.SetHostResolver(func(i int) int { return i })
	err := qr.RunPipelined(name, []dist.Chunk{{Transfers: ts}}, "", 0, func(int) error { return nil })
	st := qr.Finish()
	if err != nil {
		return bytes, st.NetSeconds, fmt.Errorf("lifecycle: %s: %w", name, err)
	}
	return bytes, st.NetSeconds, nil
}

// rebalance applies a membership mutation (already performed under mu by
// mutate, which returns the old placement) and charges the movement the
// new placement requires under the "rebalance" class.
func (m *Manager) rebalance(name string, mutate func() ([][]int, error)) error {
	m.mu.Lock()
	old, err := mutate()
	if err != nil {
		m.mu.Unlock()
		return err
	}
	m.gen++
	neu := m.placementLocked()
	ts := m.movementLocked(old, neu, m.shardBytesLocked())
	m.mu.Unlock()
	bytes, sec, err := m.charge(name, "rebalance", ts)
	m.mu.Lock()
	m.rebalancedBytes += bytes
	m.rebalanceSeconds += sec
	m.mu.Unlock()
	return err
}

// DrainWorker evacuates a worker: its replicas copy to other live hosts
// (charged to the fabric) and no new primaries land on it. The host
// stays alive — RestoreWorker can bring it back. Draining the last live
// worker is refused.
func (m *Manager) DrainWorker(w int) error {
	return m.rebalance("drain", func() ([][]int, error) {
		if _, err := m.nodeOfLocked(w); err != nil {
			return nil, err
		}
		switch m.state[w] {
		case stateDead:
			return nil, fmt.Errorf("lifecycle: worker %d is dead", w)
		case stateDrained:
			return nil, fmt.Errorf("lifecycle: worker %d already drained", w)
		}
		live := 0
		for _, st := range m.state {
			if st == stateLive {
				live++
			}
		}
		if live <= 1 {
			return nil, fmt.Errorf("lifecycle: cannot drain the last live worker")
		}
		old := m.placementLocked()
		m.state[w] = stateDrained
		return old, nil
	})
}

// RestoreWorker returns a drained worker to service; the replicas the
// new placement assigns it are copied back (charged to the fabric).
func (m *Manager) RestoreWorker(w int) error {
	return m.rebalance("restore", func() ([][]int, error) {
		if _, err := m.nodeOfLocked(w); err != nil {
			return nil, err
		}
		if m.state[w] != stateDrained {
			return nil, fmt.Errorf("lifecycle: worker %d is not drained", w)
		}
		old := m.placementLocked()
		m.state[w] = stateLive
		return old, nil
	})
}

// JoinHost annexes a spare topology host as a new live worker, returning
// its worker index. Replicas the new placement assigns it are copied
// over (charged to the fabric).
func (m *Manager) JoinHost() (int, error) {
	idx := -1
	err := m.rebalance("join", func() ([][]int, error) {
		if len(m.spares) == 0 {
			return nil, fmt.Errorf("lifecycle: no spare hosts in the %s topology", m.c.Topology)
		}
		old := m.placementLocked()
		node := m.spares[0]
		m.spares = m.spares[1:]
		m.hosts = append(m.hosts, node)
		m.state = append(m.state, stateLive)
		idx = len(m.hosts) - 1
		return old, nil
	})
	return idx, err
}

// Kill marks a worker dead: its replicas are lost, shards it hosted
// re-replicate from surviving replicas onto the new placement (charged
// under the "repair" class), and the dead host's node ID plus the shards
// whose primary it was are returned so the caller can re-dispatch work
// and re-ship in-flight data. A shard whose every replica is dead is an
// error — the data is gone and the query must fail, not fake rows.
func (m *Manager) Kill(w int) (deadNode int, remapped []int, err error) {
	m.mu.Lock()
	deadNode, err = m.nodeOfLocked(w)
	if err != nil {
		m.mu.Unlock()
		return -1, nil, err
	}
	if m.state[w] == stateDead {
		m.mu.Unlock()
		return deadNode, nil, fmt.Errorf("lifecycle: worker %d is already dead", w)
	}
	old := m.placementLocked()
	m.state[w] = stateDead
	m.gen++
	neu := m.placementLocked()
	bytes := m.shardBytesLocked()
	var lost []int
	var repairs []dist.Transfer
	for s := range old {
		if !containsWorker(old[s], w) {
			continue
		}
		src := -1
		for _, r := range old[s] {
			if r != w && m.state[r] != stateDead {
				src = r
				break
			}
		}
		if src < 0 {
			lost = append(lost, s)
			continue
		}
		if old[s][0] == w {
			remapped = append(remapped, s)
		}
		for _, r := range neu[s] {
			if !containsWorker(old[s], r) {
				repairs = append(repairs, dist.Transfer{Src: m.hosts[src], Dst: m.hosts[r], Bytes: bytes[s]})
			}
		}
	}
	m.mu.Unlock()
	if len(lost) > 0 {
		return deadNode, nil, fmt.Errorf("lifecycle: worker %d died and shard(s) %v lost every replica (replication %d)", w, lost, m.replication)
	}
	moved, sec, cerr := m.charge("repair", "repair", repairs)
	m.mu.Lock()
	m.repairBytes += moved
	m.repairSeconds += sec
	m.repairs += len(repairs)
	m.mu.Unlock()
	if cerr != nil {
		return deadNode, remapped, cerr
	}
	return deadNode, remapped, nil
}

// DegradeWorker divides the speed of every access link touching the
// worker's host by factor (values ≤1 mean PartitionFactor — an effective
// partition). The mutation happens under the admission lock and prices
// every later round; it is never undone — injected faults are part of
// the cluster's history.
func (m *Manager) DegradeWorker(w int, factor float64) error {
	m.mu.Lock()
	node, err := m.nodeOfLocked(w)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	if factor <= 1 {
		factor = PartitionFactor
	}
	m.fab.MutateNet(func(n *topo.Network) {
		for _, lid := range n.Incident(node) {
			n.Links[lid].Speed = topo.GbE(float64(n.Links[lid].Speed) / factor)
		}
	})
	return nil
}

// claimPhaseEvents hands the Guard every unfired movement-phase event
// (kill, degrade, partition) scheduled for the given phase ordinal,
// marking them fired. Events fire once per cluster: the first query to
// reach the ordinal claims them.
func (m *Manager) claimPhaseEvents(phase int) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.plan == nil {
		return nil
	}
	var out []Event
	for i, ev := range m.plan.Events {
		if m.fired[i] || ev.Kind == EventSlow || ev.Phase != phase {
			continue
		}
		m.fired[i] = true
		out = append(out, ev)
	}
	return out
}

// claimSlowEvents hands the Guard the straggle factors of every unfired
// slow-worker event scheduled for the given fragment-round ordinal,
// marking them fired.
func (m *Manager) claimSlowEvents(round int) map[int]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.plan == nil {
		return nil
	}
	var out map[int]float64
	for i, ev := range m.plan.Events {
		if m.fired[i] || ev.Kind != EventSlow || ev.Phase != round {
			continue
		}
		m.fired[i] = true
		if out == nil {
			out = map[int]float64{}
		}
		f := ev.Factor
		if f <= 0 {
			f = 4
		}
		out[ev.Worker] = f
	}
	return out
}

// Health is a point-in-time snapshot of cluster membership and the
// cumulative cost of keeping it healthy.
type Health struct {
	// Generation increments on every membership change (join, drain,
	// restore, death).
	Generation  int
	Replication int
	// Workers counts worker slots ever admitted (including dead ones);
	// Live/Drained/Dead partition them. Spares are unassigned topology
	// hosts JoinHost can still annex.
	Workers int
	Live    int
	Drained int
	Dead    int
	Spares  int
	// RebalancedBytes/RebalanceSeconds price planned movement (drain,
	// restore, join); RepairBytes/RepairSeconds/Repairs price post-death
	// re-replication. All charged to the shared fabric as real flows.
	RebalancedBytes  float64
	RebalanceSeconds float64
	RepairBytes      float64
	RepairSeconds    float64
	Repairs          int
	// EventsFired/EventsTotal track the fault plan's schedule.
	EventsFired int
	EventsTotal int
}

// Health snapshots the cluster state.
func (m *Manager) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := Health{
		Generation:       m.gen,
		Replication:      m.replication,
		Workers:          len(m.hosts),
		Spares:           len(m.spares),
		RebalancedBytes:  m.rebalancedBytes,
		RebalanceSeconds: m.rebalanceSeconds,
		RepairBytes:      m.repairBytes,
		RepairSeconds:    m.repairSeconds,
		Repairs:          m.repairs,
	}
	for _, st := range m.state {
		switch st {
		case stateLive:
			h.Live++
		case stateDrained:
			h.Drained++
		case stateDead:
			h.Dead++
		}
	}
	if m.plan != nil {
		h.EventsTotal = len(m.plan.Events)
		for _, f := range m.fired {
			if f {
				h.EventsFired++
			}
		}
	}
	return h
}
