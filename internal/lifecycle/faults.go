package lifecycle

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// EventKind classifies one injected fault.
type EventKind int

const (
	// EventKill kills a worker host partway through a movement phase: the
	// phase's data to and from the host is lost and must re-ship from
	// replicas, its shards re-dispatch to surviving replicas, and the
	// host never comes back.
	EventKill EventKind = iota
	// EventSlow makes a worker straggle through one fragment round: its
	// fragments are delayed by Factor×StragglerDelay, past the
	// speculation threshold, so backups launch and race them.
	EventSlow
	// EventDegrade divides the speed of the worker's access links by
	// Factor from the next admission round on.
	EventDegrade
	// EventPartition is EventDegrade at PartitionFactor: the host is
	// effectively cut off, every byte crossing the cut priced three
	// orders of magnitude up.
	EventPartition
)

func (k EventKind) String() string {
	switch k {
	case EventKill:
		return "kill"
	case EventSlow:
		return "slow"
	case EventDegrade:
		return "degrade"
	case EventPartition:
		return "partition"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one scheduled fault. Phase is an ordinal into the faulted
// query's execution: for kill/degrade/partition it counts movement
// phases (broadcast/shuffle = 0, gather follows), for slow it counts
// fragment-materialization rounds. Events fire once per cluster, claimed
// by the first query whose execution reaches the ordinal — a seeded
// schedule therefore replays deterministically on a deterministic
// workload.
type Event struct {
	Kind   EventKind
	Worker int
	Phase  int
	// Frac is the fraction of the phase completed when a kill lands
	// (bounds the data already delivered from the dying host; ≤0 means
	// 0.5). Factor is the straggle multiplier for slow and the link-speed
	// divisor for degrade.
	Frac   float64
	Factor float64
}

// FaultPlan is a deterministic fault schedule plus the speculation
// tuning knobs.
type FaultPlan struct {
	Events []Event
	// StragglerDelay is the delay a slow event injects per Factor unit
	// into the straggling fragment (default 50ms — far past the
	// speculation threshold, so backups always launch).
	StragglerDelay time.Duration
	// SpecThreshold is how long a fragment may run before the Guard
	// launches a speculative duplicate (default 5ms).
	SpecThreshold time.Duration
}

func (p *FaultPlan) stragglerDelay() time.Duration {
	if p == nil || p.StragglerDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.StragglerDelay
}

func (p *FaultPlan) specThreshold() time.Duration {
	if p == nil || p.SpecThreshold <= 0 {
		return 5 * time.Millisecond
	}
	return p.SpecThreshold
}

// String renders the plan in ParsePlan's grammar.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, ev := range p.Events {
		s := fmt.Sprintf("%s:%d@%d", ev.Kind, ev.Worker, ev.Phase)
		switch {
		case ev.Kind == EventKill && ev.Frac > 0:
			s += fmt.Sprintf(":%g", ev.Frac)
		case (ev.Kind == EventSlow || ev.Kind == EventDegrade) && ev.Factor > 0:
			s += fmt.Sprintf(":%g", ev.Factor)
		}
		parts[i] = s
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated fault schedule:
//
//	kill:W@P[:FRAC]       worker W dies FRAC (default 0.5) through movement phase P
//	slow:W@R[:FACTOR]     worker W straggles FACTOR× (default 4) in fragment round R
//	degrade:W@P[:FACTOR]  worker W's links run FACTOR× (default 10) slower from phase P
//	partition:W@P         worker W is cut off from phase P
//	seed:N                a seeded pseudo-random schedule over the cluster's workers
//
// workers is the cluster's worker count, used to place seeded events and
// bounds-check explicit ones. An empty spec returns (nil, nil).
func ParsePlan(spec string, workers int) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		kind := fields[0]
		if kind == "seed" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("lifecycle: bad fault %q (want seed:N)", part)
			}
			seed, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("lifecycle: bad fault seed %q: %v", fields[1], err)
			}
			plan.Events = append(plan.Events, Seeded(seed, workers).Events...)
			continue
		}
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("lifecycle: bad fault %q (want kind:worker@phase[:arg])", part)
		}
		at := strings.Split(fields[1], "@")
		if len(at) != 2 {
			return nil, fmt.Errorf("lifecycle: bad fault %q (want kind:worker@phase[:arg])", part)
		}
		w, err := strconv.Atoi(at[0])
		if err != nil || w < 0 || (workers > 0 && w >= workers) {
			return nil, fmt.Errorf("lifecycle: bad fault worker %q in %q (have %d workers)", at[0], part, workers)
		}
		phase, err := strconv.Atoi(at[1])
		if err != nil || phase < 0 {
			return nil, fmt.Errorf("lifecycle: bad fault phase %q in %q", at[1], part)
		}
		arg := 0.0
		if len(fields) == 3 {
			arg, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || arg <= 0 {
				return nil, fmt.Errorf("lifecycle: bad fault argument %q in %q", fields[2], part)
			}
		}
		ev := Event{Worker: w, Phase: phase}
		switch kind {
		case "kill":
			ev.Kind, ev.Frac = EventKill, arg
		case "slow":
			ev.Kind, ev.Factor = EventSlow, arg
		case "degrade":
			ev.Kind, ev.Factor = EventDegrade, arg
			if ev.Factor <= 0 {
				ev.Factor = 10
			}
		case "partition":
			ev.Kind = EventPartition
		default:
			return nil, fmt.Errorf("lifecycle: unknown fault kind %q in %q (have kill, slow, degrade, partition, seed)", kind, part)
		}
		plan.Events = append(plan.Events, ev)
	}
	if len(plan.Events) == 0 {
		return nil, nil
	}
	return plan, nil
}

// Seeded builds a deterministic pseudo-random schedule for a cluster of
// the given worker count: one mid-phase host death, one straggler, one
// link degradation, each placed by the seeded generator. The same seed
// and worker count always yield the same schedule.
func Seeded(seed int64, workers int) *FaultPlan {
	if workers < 1 {
		workers = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kill := rng.Intn(workers)
	slow := (kill + 1 + rng.Intn(maxInt(workers-1, 1))) % workers
	degrade := rng.Intn(workers)
	return &FaultPlan{Events: []Event{
		{Kind: EventKill, Worker: kill, Phase: rng.Intn(2), Frac: 0.25 + 0.5*rng.Float64()},
		{Kind: EventSlow, Worker: slow, Phase: rng.Intn(2), Factor: 2 + 3*rng.Float64()},
		{Kind: EventDegrade, Worker: degrade, Phase: rng.Intn(2), Factor: 4 + 8*rng.Float64()},
	}}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
