package hw

import (
	"math"
	"testing"
	"testing/quick"
)

// analyticsKernel is a compute-heavy, highly parallel scoring kernel
// (operational intensity 100 ops/byte, e.g. dense feature scoring).
func analyticsKernel() Kernel {
	return Kernel{Name: "score", Ops: 1e10, Bytes: 1e8, ParallelFraction: 0.999}
}

// scanKernel is memory-bound.
func scanKernel() Kernel {
	return Kernel{Name: "scan", Ops: 1e8, Bytes: 4e9, ParallelFraction: 1.0}
}

func TestRooflineComputeBound(t *testing.T) {
	cpu := XeonCPU()
	k := Kernel{Ops: 1e12, Bytes: 1, ParallelFraction: 1}
	want := 1e12 / (cpu.GOpsPeak * 1e9)
	if got := cpu.Seconds(k); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("compute-bound time = %v, want %v", got, want)
	}
}

func TestRooflineMemoryBound(t *testing.T) {
	cpu := XeonCPU()
	k := Kernel{Ops: 1, Bytes: 120e9, ParallelFraction: 1}
	if got := cpu.Seconds(k); math.Abs(got-1) > 1e-6 {
		t.Fatalf("memory-bound time = %v, want ~1s", got)
	}
}

func TestLaunchOverheadDominatesSmallKernels(t *testing.T) {
	gpu := GPGPU()
	cpu := XeonCPU()
	tiny := Kernel{Ops: 1e4, Bytes: 1e3, ParallelFraction: 1}
	if gpu.Seconds(tiny) <= cpu.Seconds(tiny) {
		t.Fatal("GPU should lose on tiny kernels due to launch overhead")
	}
}

func TestGPUWinsBigParallelKernels(t *testing.T) {
	gpu := GPGPU()
	cpu := XeonCPU()
	if s := Speedup(cpu, gpu, analyticsKernel()); s < 5 {
		t.Fatalf("GPU speedup on analytics kernel = %v, want >= 5", s)
	}
}

func TestASICDominatesThroughput(t *testing.T) {
	k := analyticsKernel()
	asic := RankingASIC()
	for name, d := range Catalog() {
		if name == "asic" {
			continue
		}
		if d.Throughput(k) >= asic.Throughput(k) {
			t.Fatalf("%s beats ASIC on its kernel", name)
		}
	}
}

func TestFPGAEnergyEfficiencyBeatsCPUAndGPU(t *testing.T) {
	k := analyticsKernel()
	fpga := FPGACard()
	if fpga.OpsPerJoule(k) <= XeonCPU().OpsPerJoule(k) {
		t.Fatal("FPGA should beat CPU on ops/J")
	}
	if fpga.OpsPerJoule(k) <= GPGPU().OpsPerJoule(k)/2 {
		t.Fatal("FPGA ops/J should be at least comparable to GPU")
	}
}

func TestNeuromorphicOpsPerJoule(t *testing.T) {
	// Sparse inference kernel: moderate ops, tiny memory traffic.
	k := Kernel{Ops: 1e8, Bytes: 1e6, ParallelFraction: 1}
	npu := Neuromorphic()
	if npu.OpsPerJoule(k) <= GPGPU().OpsPerJoule(k) {
		t.Fatal("NPU should lead on ops/J for sparse inference")
	}
}

func TestAmdahlSerialFractionHurtsWideDevices(t *testing.T) {
	gpu := GPGPU()
	parallel := Kernel{Ops: 1e10, Bytes: 1e8, ParallelFraction: 1.0}
	halfSerial := Kernel{Ops: 1e10, Bytes: 1e8, ParallelFraction: 0.5}
	ratio := gpu.Seconds(halfSerial) / gpu.Seconds(parallel)
	if ratio < 4 {
		t.Fatalf("serial fraction penalty on GPU = %vx, want >= 4x", ratio)
	}
	cpu := XeonCPU()
	cpuRatio := cpu.Seconds(halfSerial) / cpu.Seconds(parallel)
	if cpuRatio >= ratio {
		t.Fatal("CPU should degrade less than GPU under serial code")
	}
}

func TestPowerModel(t *testing.T) {
	cpu := XeonCPU()
	if cpu.Power(0) != cpu.IdleWatts {
		t.Fatal("idle power wrong")
	}
	if cpu.Power(1) != cpu.TDPWatts {
		t.Fatal("full power wrong")
	}
	mid := cpu.Power(0.5)
	if mid <= cpu.IdleWatts || mid >= cpu.TDPWatts {
		t.Fatalf("midpoint power %v out of range", mid)
	}
	if cpu.Power(2) != cpu.TDPWatts || cpu.Power(-1) != cpu.IdleWatts {
		t.Fatal("power not clamped")
	}
}

func TestPowerMonotoneProperty(t *testing.T) {
	d := GPGPU()
	err := quick.Check(func(a, b float64) bool {
		ua := math.Abs(math.Mod(a, 1))
		ub := math.Abs(math.Mod(b, 1))
		if ua > ub {
			ua, ub = ub, ua
		}
		return d.Power(ua) <= d.Power(ub)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSecondsPositiveProperty(t *testing.T) {
	devices := []*Device{XeonCPU(), GPGPU(), FPGACard(), RankingASIC(), Neuromorphic()}
	err := quick.Check(func(opsRaw, bytesRaw uint32, pfRaw uint8) bool {
		k := Kernel{
			Ops:              float64(opsRaw) + 1,
			Bytes:            float64(bytesRaw),
			ParallelFraction: float64(pfRaw%101) / 100,
		}
		for _, d := range devices {
			if !(d.Seconds(k) > 0) {
				return false
			}
			if d.Throughput(k) <= 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNodeBestDevice(t *testing.T) {
	n := KitchenSinkNode()
	d, sp := n.BestDevice(analyticsKernel())
	if d.Class != ASIC {
		t.Fatalf("best device = %v, want asic", d.Name)
	}
	if sp < 10 {
		t.Fatalf("hetero node speedup = %v, want >= 10 (Recommendation 4 target)", sp)
	}
	// Memory-bound scan: GPU's HBM should win.
	d2, _ := n.BestDevice(scanKernel())
	if d2.Class != GPU {
		t.Fatalf("best device for scan = %v, want gpu", d2.Name)
	}
}

func TestNodeAggregates(t *testing.T) {
	n := GPUNode()
	if n.TotalPrice() != XeonCPU().PriceEUR+GPGPU().PriceEUR {
		t.Fatalf("price = %v", n.TotalPrice())
	}
	if n.IdlePower() != XeonCPU().IdleWatts+GPGPU().IdleWatts {
		t.Fatalf("idle = %v", n.IdlePower())
	}
	if len(CommodityNode().Devices()) != 1 {
		t.Fatal("commodity node should be CPU-only")
	}
}

func TestIntensity(t *testing.T) {
	k := Kernel{Ops: 100, Bytes: 50}
	if k.Intensity() != 2 {
		t.Fatalf("intensity = %v", k.Intensity())
	}
	z := Kernel{Ops: 100, Bytes: 0}
	if z.Intensity() < 1e11 {
		t.Fatal("zero-byte kernel should have huge intensity")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{CPU: "cpu", GPU: "gpu", FPGA: "fpga", ASIC: "asic", NPU: "npu"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", int(c), c.String())
		}
	}
}

func TestZeroOpsKernel(t *testing.T) {
	gpu := GPGPU()
	k := Kernel{Ops: 0, Bytes: 0}
	if got := gpu.Seconds(k); got != gpu.LaunchOverheadUS*1e-6 {
		t.Fatalf("zero kernel time = %v", got)
	}
}
