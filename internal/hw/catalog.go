package hw

// The catalog instantiates device models with datasheet-class parameters
// for the 2016/2017 technology generation the roadmap describes. Absolute
// numbers are representative, not vendor-exact; experiments depend on the
// ratios (GPU ~an order of magnitude more parallel throughput than a CPU
// socket, FPGA lower peak but far better ops/J and deterministic latency,
// ASIC best-in-class for its one function), which are robust across
// datasheets of that era.

// XeonCPU returns a two-socket-class server CPU model (~1 TFLOP-equivalent
// integer/FP mix, ~120 GB/s, 2×145 W).
func XeonCPU() *Device {
	return &Device{
		Name: "xeon-2s", Class: CPU,
		GOpsPeak: 1000, MemGBs: 120, LaunchOverheadUS: 0,
		TDPWatts: 290, IdleWatts: 100, PriceEUR: 4000,
		SerialFraction: 0,
	}
}

// GPGPU returns a datacenter GPU accelerator model (~10 TOPS usable,
// ~700 GB/s HBM, 300 W, PCIe launch overhead).
func GPGPU() *Device {
	return &Device{
		Name: "gpgpu", Class: GPU,
		GOpsPeak: 10000, MemGBs: 700, LaunchOverheadUS: 30,
		TDPWatts: 300, IdleWatts: 30, PriceEUR: 8000,
		SerialFraction: 0.005,
	}
}

// FPGACard returns a Catapult-class FPGA board model: moderate peak,
// pipeline determinism (no serial stall term), very low launch overhead on
// the datapath, 25 W.
func FPGACard() *Device {
	return &Device{
		Name: "fpga", Class: FPGA,
		GOpsPeak: 2000, MemGBs: 40, LaunchOverheadUS: 2,
		TDPWatts: 25, IdleWatts: 10, PriceEUR: 3500,
		SerialFraction: 0,
	}
}

// RankingASIC returns a fixed-function accelerator for one kernel family
// (e.g. scoring or compression): very high throughput and efficiency, but
// only applicable where the kernel matches.
func RankingASIC() *Device {
	return &Device{
		Name: "asic", Class: ASIC,
		GOpsPeak: 40000, MemGBs: 500, LaunchOverheadUS: 1,
		TDPWatts: 75, IdleWatts: 5, PriceEUR: 12000,
		SerialFraction: 0,
	}
}

// Neuromorphic returns a spiking-network processor model: modest raw ops
// but extreme ops/J on sparse event-driven inference (Recommendation 7).
func Neuromorphic() *Device {
	return &Device{
		Name: "npu", Class: NPU,
		GOpsPeak: 500, MemGBs: 20, LaunchOverheadUS: 5,
		TDPWatts: 1.5, IdleWatts: 0.2, PriceEUR: 6000,
		SerialFraction: 0,
	}
}

// Catalog returns the full device roster keyed by class name.
func Catalog() map[string]*Device {
	return map[string]*Device{
		"cpu":  XeonCPU(),
		"gpu":  GPGPU(),
		"fpga": FPGACard(),
		"asic": RankingASIC(),
		"npu":  Neuromorphic(),
	}
}

// Node is a compute node composed of a host CPU and optional accelerators.
type Node struct {
	Name   string
	Host   *Device
	Accels []*Device
}

// Devices returns the host followed by accelerators.
func (n *Node) Devices() []*Device {
	out := []*Device{n.Host}
	return append(out, n.Accels...)
}

// BestDevice returns the device with the highest throughput for k and the
// achieved speedup over the host CPU.
func (n *Node) BestDevice(k Kernel) (*Device, float64) {
	best := n.Host
	bt := n.Host.Throughput(k)
	for _, d := range n.Accels {
		if t := d.Throughput(k); t > bt {
			best, bt = d, t
		}
	}
	return best, bt / n.Host.Throughput(k)
}

// TotalPrice returns the node acquisition cost.
func (n *Node) TotalPrice() float64 {
	p := n.Host.PriceEUR
	for _, d := range n.Accels {
		p += d.PriceEUR
	}
	return p
}

// IdlePower returns the node floor draw in watts.
func (n *Node) IdlePower() float64 {
	w := n.Host.Power(0)
	for _, d := range n.Accels {
		w += d.Power(0)
	}
	return w
}

// CommodityNode returns a CPU-only server.
func CommodityNode() *Node { return &Node{Name: "commodity", Host: XeonCPU()} }

// GPUNode returns a server with one GPGPU.
func GPUNode() *Node {
	return &Node{Name: "gpu-node", Host: XeonCPU(), Accels: []*Device{GPGPU()}}
}

// FPGANode returns a Catapult-style server with one FPGA in the datapath.
func FPGANode() *Node {
	return &Node{Name: "fpga-node", Host: XeonCPU(), Accels: []*Device{FPGACard()}}
}

// KitchenSinkNode returns a server with GPU, FPGA and ASIC for the
// heterogeneous-scheduling experiments.
func KitchenSinkNode() *Node {
	return &Node{Name: "hetero-node", Host: XeonCPU(), Accels: []*Device{GPGPU(), FPGACard(), RankingASIC()}}
}
