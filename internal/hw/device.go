// Package hw models heterogeneous compute devices — CPUs, GPGPUs, FPGAs,
// ASICs and neuromorphic processors — with a roofline performance model and
// a utilization-scaled power model. It is the node-architecture substrate
// for the accelerator experiments (Sections IV.B, Recommendations 4, 10).
//
// The model is deliberately first-order: a device executes a kernel at
// min(compute throughput × kernel parallel efficiency, memory bandwidth /
// kernel byte intensity), plus a fixed offload/launch overhead. That is
// the level of fidelity at which the roadmap's claims (10× per-node
// throughput, GPGPU ROI, FPGA tail-latency) are stated, and it is the
// standard model used for such feasibility arguments.
package hw

import "fmt"

// Class identifies the device technology.
type Class int

// Device classes discussed in the roadmap.
const (
	CPU Class = iota
	GPU
	FPGA
	ASIC
	NPU // neuromorphic processor
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case FPGA:
		return "fpga"
	case ASIC:
		return "asic"
	case NPU:
		return "npu"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Device is a parametric compute device.
type Device struct {
	Name  string
	Class Class

	// GOpsPeak is peak compute throughput in giga-operations per second
	// (for the operation mix of the target kernels).
	GOpsPeak float64
	// MemGBs is sustained memory bandwidth in GB/s.
	MemGBs float64
	// LaunchOverheadUS is the fixed cost to dispatch work (kernel launch,
	// PCIe transfer setup, reconfiguration amortization), in microseconds.
	LaunchOverheadUS float64
	// TDPWatts is the thermal design power; IdleWatts the floor draw.
	TDPWatts  float64
	IdleWatts float64
	// PriceEUR is the acquisition cost used by the TCO/ROI experiments.
	PriceEUR float64
	// SerialFraction is the fraction of kernel work this device cannot
	// parallelize (Amdahl); 0 for fully-streaming devices like ASICs.
	SerialFraction float64
}

// Kernel describes a unit of offloadable work in roofline terms.
type Kernel struct {
	Name string
	// Ops is total operations (in units matching GOpsPeak ×1e9).
	Ops float64
	// Bytes is total memory traffic in bytes.
	Bytes float64
	// ParallelFraction is the fraction of the kernel that parallelizes
	// (1 - Amdahl serial fraction of the *algorithm*).
	ParallelFraction float64
}

// Intensity returns operational intensity in ops/byte (Inf for zero-byte
// kernels is avoided by returning a large value).
func (k Kernel) Intensity() float64 {
	if k.Bytes <= 0 {
		return 1e12
	}
	return k.Ops / k.Bytes
}

// Seconds returns the roofline execution time of kernel k on device d,
// including launch overhead and the Amdahl serial term.
func (d *Device) Seconds(k Kernel) float64 {
	if k.Ops <= 0 {
		return d.LaunchOverheadUS * 1e-6
	}
	computeS := k.Ops / (d.GOpsPeak * 1e9)
	memS := 0.0
	if d.MemGBs > 0 {
		memS = k.Bytes / (d.MemGBs * 1e9)
	}
	// Parallel portion is bounded by the slower of the two rooflines.
	parallel := computeS
	if memS > parallel {
		parallel = memS
	}
	// Serial portion runs at 1/SerialEff of peak single-stream rate: model
	// it as the serial fraction of ops at 1/32 of device peak for wide
	// devices (they lose their width) and full rate for CPUs.
	serialFrac := d.SerialFraction
	if k.ParallelFraction < 1 {
		f := 1 - k.ParallelFraction
		if f > serialFrac {
			serialFrac = f
		}
	}
	serial := 0.0
	if serialFrac > 0 {
		narrowPeak := d.GOpsPeak
		if d.Class != CPU {
			narrowPeak = d.GOpsPeak / 32 // wide devices stall on serial code
		}
		serial = serialFrac * k.Ops / (narrowPeak * 1e9)
		parallel *= (1 - serialFrac)
	}
	return d.LaunchOverheadUS*1e-6 + parallel + serial
}

// Throughput returns kernels/second for kernel k on device d.
func (d *Device) Throughput(k Kernel) float64 {
	s := d.Seconds(k)
	if s <= 0 {
		return 0
	}
	return 1 / s
}

// Power returns the draw in watts at the given utilization in [0, 1],
// linearly interpolated between idle and TDP (the standard first-order
// server power model).
func (d *Device) Power(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return d.IdleWatts + (d.TDPWatts-d.IdleWatts)*utilization
}

// EnergyJ returns the energy in joules to run kernel k once at full
// utilization.
func (d *Device) EnergyJ(k Kernel) float64 {
	return d.Seconds(k) * d.Power(1)
}

// OpsPerJoule returns energy efficiency for kernel k.
func (d *Device) OpsPerJoule(k Kernel) float64 {
	e := d.EnergyJ(k)
	if e <= 0 {
		return 0
	}
	return k.Ops / e
}

// Speedup returns d's throughput on k relative to the baseline device.
func Speedup(baseline, d *Device, k Kernel) float64 {
	b := baseline.Throughput(k)
	if b <= 0 {
		return 0
	}
	return d.Throughput(k) / b
}
