package disagg

import "fmt"

// Allocator grants logical machines from physical inventory and releases
// them again. Implementations: Monolithic (fixed servers) and Composable
// (per-kind pools).
type Allocator interface {
	// Allocate tries to grant the request; ok is false when it cannot.
	Allocate(r Request) (Placement, bool)
	// Release returns a granted placement's resources.
	Release(p Placement)
	// Capacity is total physical inventory; Used is currently granted.
	Capacity() Vector
	Used() Vector
}

// Utilization returns per-kind used/capacity fractions for an allocator.
func Utilization(a Allocator) Vector {
	c, u := a.Capacity(), a.Used()
	var out Vector
	for i := range out {
		if c[i] > 0 {
			out[i] = u[i] / c[i]
		}
	}
	return out
}

// Packing selects the monolithic bin-packing rule.
type Packing int

const (
	// FirstFit scans servers in ID order and takes the first that fits.
	FirstFit Packing = iota
	// BestFit takes the feasible server with the least remaining slack
	// (measured in normalized volume), packing tighter at higher cost.
	BestFit
)

// String implements fmt.Stringer.
func (p Packing) String() string {
	if p == BestFit {
		return "best-fit"
	}
	return "first-fit"
}

// ServerSpec is the fixed shape of one monolithic server model.
type ServerSpec struct {
	Name     string
	Shape    Vector
	PriceEUR float64
}

// CommodityServer returns a typical 2016 2-socket server: 32 cores,
// 256 GiB, 8 TiB, 10 Gbps, no accelerator, ~8 kEUR.
func CommodityServer() ServerSpec {
	return ServerSpec{Name: "2s-commodity", Shape: V(32, 256, 8, 10, 0), PriceEUR: 8000}
}

// Monolithic is the conventional datacenter: n identical servers; a request
// must fit entirely within one server, so unused remainders are stranded.
type Monolithic struct {
	Spec    ServerSpec
	Pack    Packing
	free    []Vector
	granted map[int]Vector // request ID -> demand (for release accounting)
	used    Vector
	// Rejected counts failed allocations.
	Rejected int
}

// NewMonolithic builds a monolithic datacenter of n servers.
func NewMonolithic(spec ServerSpec, n int, pack Packing) *Monolithic {
	m := &Monolithic{Spec: spec, Pack: pack, granted: map[int]Vector{}}
	for i := 0; i < n; i++ {
		m.free = append(m.free, spec.Shape)
	}
	return m
}

// Servers returns the server count.
func (m *Monolithic) Servers() int { return len(m.free) }

// Capacity implements Allocator.
func (m *Monolithic) Capacity() Vector {
	return m.Spec.Shape.Scale(float64(len(m.free)))
}

// Used implements Allocator.
func (m *Monolithic) Used() Vector { return m.used }

// volume normalizes a remainder against the server shape for best-fit
// comparison (sum of per-kind fractions).
func (m *Monolithic) volume(v Vector) float64 {
	t := 0.0
	for i := range v {
		if m.Spec.Shape[i] > 0 {
			t += v[i] / m.Spec.Shape[i]
		}
	}
	return t
}

// Allocate implements Allocator.
func (m *Monolithic) Allocate(r Request) (Placement, bool) {
	chosen := -1
	switch m.Pack {
	case FirstFit:
		for i, f := range m.free {
			if f.Fits(r.Demand) {
				chosen = i
				break
			}
		}
	case BestFit:
		bestSlack := 0.0
		for i, f := range m.free {
			if !f.Fits(r.Demand) {
				continue
			}
			slack := m.volume(f.Sub(r.Demand))
			if chosen == -1 || slack < bestSlack {
				chosen, bestSlack = i, slack
			}
		}
	}
	if chosen == -1 {
		m.Rejected++
		return Placement{}, false
	}
	m.free[chosen] = m.free[chosen].Sub(r.Demand)
	m.used = m.used.Add(r.Demand)
	m.granted[r.ID] = r.Demand
	return Placement{Request: r, ServerID: chosen}, true
}

// Release implements Allocator.
func (m *Monolithic) Release(p Placement) {
	d, ok := m.granted[p.Request.ID]
	if !ok {
		panic(fmt.Sprintf("disagg: release of unknown request %d", p.Request.ID))
	}
	delete(m.granted, p.Request.ID)
	m.free[p.ServerID] = m.free[p.ServerID].Add(d)
	m.used = m.used.Sub(d)
}

// Stranded returns, per kind, the fraction of total capacity that sits in
// partially-used servers yet cannot serve a probe request of the given
// shape — the roadmap's stranding argument in one number.
func (m *Monolithic) Stranded(probe Vector) Vector {
	var stranded Vector
	cap := m.Capacity()
	for _, f := range m.free {
		if f == m.Spec.Shape {
			continue // fully free server: not stranded
		}
		if !f.Fits(probe) {
			stranded = stranded.Add(f)
		}
	}
	for i := range stranded {
		if cap[i] > 0 {
			stranded[i] /= cap[i]
		}
	}
	return stranded
}

// Composable is the disaggregated datacenter: one pool per resource kind
// connected by a high-bandwidth fabric; a request draws independently from
// each pool.
type Composable struct {
	pool    Vector
	cap     Vector
	granted map[int]Vector
	// FabricGbpsPerMachine is the fabric bandwidth consumed per granted
	// logical machine to reach its remote memory/storage — the cost side
	// of disaggregation (Section IV.A.3 requires "high bandwidth available
	// at all key interconnect nodes").
	FabricGbpsPerMachine float64
	fabricGbps           float64
	// Rejected counts failed allocations.
	Rejected int
}

// NewComposable builds pools with the given total capacity.
func NewComposable(total Vector) *Composable {
	return &Composable{pool: total, cap: total, granted: map[int]Vector{}, FabricGbpsPerMachine: 40}
}

// NewComposableFromServers builds pools holding exactly the resources of n
// servers of the given spec — the apples-to-apples comparison used by E4.
func NewComposableFromServers(spec ServerSpec, n int) *Composable {
	return NewComposable(spec.Shape.Scale(float64(n)))
}

// Capacity implements Allocator.
func (c *Composable) Capacity() Vector { return c.cap }

// Used implements Allocator.
func (c *Composable) Used() Vector { return c.cap.Sub(c.pool) }

// FabricGbps returns the fabric bandwidth currently committed to granted
// machines.
func (c *Composable) FabricGbps() float64 { return c.fabricGbps }

// Allocate implements Allocator.
func (c *Composable) Allocate(r Request) (Placement, bool) {
	if !c.pool.Fits(r.Demand) {
		c.Rejected++
		return Placement{}, false
	}
	c.pool = c.pool.Sub(r.Demand)
	c.granted[r.ID] = r.Demand
	c.fabricGbps += c.FabricGbpsPerMachine
	return Placement{Request: r, ServerID: -1}, true
}

// Release implements Allocator.
func (c *Composable) Release(p Placement) {
	d, ok := c.granted[p.Request.ID]
	if !ok {
		panic(fmt.Sprintf("disagg: release of unknown request %d", p.Request.ID))
	}
	delete(c.granted, p.Request.ID)
	c.pool = c.pool.Add(d)
	c.fabricGbps -= c.FabricGbpsPerMachine
}
