// Package disagg models the "deconstructed data center" of Section IV.A.3:
// composable infrastructure where CPU, memory, I/O and storage are pooled
// and allocated à la carte, versus the monolithic-server baseline where
// resources are soldered together in fixed ratios. It quantifies the two
// benefits the roadmap claims — less resource stranding and cheaper
// incremental upgrades — and the cost the roadmap flags: the fabric
// bandwidth needed to make remote resources usable.
package disagg

import "fmt"

// Kind identifies a resource dimension.
type Kind int

// The composable resource kinds the roadmap lists ("CPU, memory, I/O and
// storage that is purchased à la carte").
const (
	CPU     Kind = iota // cores
	Memory              // GiB
	Storage             // TiB
	IO                  // Gbps of NIC capacity
	Accel               // accelerator units
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case Storage:
		return "storage"
	case IO:
		return "io"
	case Accel:
		return "accel"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds returns every resource kind in order.
func Kinds() []Kind { return []Kind{CPU, Memory, Storage, IO, Accel} }

// Vector is an amount per resource kind.
type Vector [numKinds]float64

// V builds a vector from (cpu, memGiB, storTiB, ioGbps, accel).
func V(cpu, mem, stor, io, accel float64) Vector {
	return Vector{cpu, mem, stor, io, accel}
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Fits reports whether w fits within v on every dimension.
func (v Vector) Fits(w Vector) bool {
	for i := range v {
		if w[i] > v[i]+1e-9 {
			return false
		}
	}
	return true
}

// Dot returns the inner product (used for pricing: amount × unit price).
func (v Vector) Dot(w Vector) float64 {
	t := 0.0
	for i := range v {
		t += v[i] * w[i]
	}
	return t
}

// IsZero reports whether every component is (numerically) zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i] > 1e-9 || v[i] < -1e-9 {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%.3g mem=%.3g stor=%.3g io=%.3g accel=%.3g",
		v[CPU], v[Memory], v[Storage], v[IO], v[Accel])
}

// UnitPricesEUR returns representative 2016 unit prices per resource unit:
// EUR per core, per GiB DRAM, per TiB storage, per Gbps NIC, per
// accelerator.
func UnitPricesEUR() Vector { return V(120, 8, 40, 25, 3500) }

// Request is a demand for a logical machine.
type Request struct {
	ID     int
	Demand Vector
}

// Placement records where a granted request landed; ServerID is -1 for
// pooled (disaggregated) grants.
type Placement struct {
	Request  Request
	ServerID int
}
