package disagg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestVectorArithmetic(t *testing.T) {
	a := V(1, 2, 3, 4, 5)
	b := V(5, 4, 3, 2, 1)
	if got := a.Add(b); got != V(6, 6, 6, 6, 6) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-4, -2, 0, 2, 4) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6, 8, 10) {
		t.Fatalf("Scale = %v", got)
	}
	if a.Dot(b) != 5+8+9+8+5 {
		t.Fatalf("Dot = %v", a.Dot(b))
	}
	if !a.Fits(a) || a.Fits(a.Add(V(0, 0, 0, 0, 0.1))) {
		t.Fatal("Fits misbehaves")
	}
}

func TestVectorAddSubRoundTrip(t *testing.T) {
	// Inputs are folded into a resource-realistic range; arbitrary float64
	// magnitudes overflow and are not meaningful resource amounts.
	f := func(a, b [5]float64) bool {
		var va, vb Vector
		for i := range a {
			va[i] = math.Mod(a[i], 1e6)
			vb[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(va[i]) {
				va[i] = 0
			}
			if math.IsNaN(vb[i]) {
				vb[i] = 0
			}
		}
		got := va.Add(vb).Sub(vb)
		for i := range got {
			if math.Abs(got[i]-va[i]) > 1e-6*(1+math.Abs(va[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMonolithicAllocateRelease(t *testing.T) {
	m := NewMonolithic(CommodityServer(), 2, FirstFit)
	r := Request{ID: 1, Demand: V(16, 128, 4, 5, 0)}
	p, ok := m.Allocate(r)
	if !ok {
		t.Fatal("allocate failed")
	}
	if p.ServerID != 0 {
		t.Fatalf("first-fit should use server 0, got %d", p.ServerID)
	}
	if m.Used() != r.Demand {
		t.Fatalf("used = %v", m.Used())
	}
	m.Release(p)
	if !m.Used().IsZero() {
		t.Fatalf("used after release = %v", m.Used())
	}
}

func TestMonolithicRejectsOversized(t *testing.T) {
	m := NewMonolithic(CommodityServer(), 4, FirstFit)
	if _, ok := m.Allocate(Request{ID: 1, Demand: V(64, 0, 0, 0, 0)}); ok {
		t.Fatal("a 64-core request cannot fit a 32-core server even with 4 servers free")
	}
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d", m.Rejected)
	}
}

func TestBestFitPacksTighter(t *testing.T) {
	spec := CommodityServer()
	run := func(pack Packing) int {
		m := NewMonolithic(spec, 8, pack)
		rng := sim.NewRNG(11)
		granted := 0
		id := 0
		// Mixed load: some big, some small requests.
		for i := 0; i < 64; i++ {
			var d Vector
			if rng.Bool(0.3) {
				d = V(16, 128, 4, 5, 0)
			} else {
				d = V(4, 32, 1, 1, 0)
			}
			id++
			if _, ok := m.Allocate(Request{ID: id, Demand: d}); ok {
				granted++
			}
		}
		return granted
	}
	if bf, ff := run(BestFit), run(FirstFit); bf < ff {
		t.Fatalf("best-fit granted %d < first-fit %d", bf, ff)
	}
}

func TestComposableBeatsMonolithicOnSkewedShapes(t *testing.T) {
	// The roadmap's stranding argument: memory-heavy requests exhaust a
	// monolithic server's DRAM while stranding its cores; pools do not.
	spec := CommodityServer()
	n := 8
	mono := NewMonolithic(spec, n, BestFit)
	comp := NewComposableFromServers(spec, n)
	memHeavy := V(2, 192, 1, 1, 0) // 2 cores but 3/4 of a server's DRAM
	granted := func(a Allocator) int {
		g := 0
		for i := 0; i < 200; i++ {
			if _, ok := a.Allocate(Request{ID: i, Demand: memHeavy}); ok {
				g++
			}
		}
		return g
	}
	gm, gc := granted(mono), granted(comp)
	if gc <= gm {
		t.Fatalf("composable granted %d, monolithic %d; want composable > monolithic", gc, gm)
	}
	// Pools admit exactly total-mem / request-mem machines.
	want := int(float64(n) * spec.Shape[Memory] / memHeavy[Memory])
	if gc != want {
		t.Fatalf("composable granted %d, want %d", gc, want)
	}
}

func TestStrandedCoresUnderMemoryPressure(t *testing.T) {
	spec := CommodityServer()
	m := NewMonolithic(spec, 4, FirstFit)
	for i := 0; i < 4; i++ {
		if _, ok := m.Allocate(Request{ID: i, Demand: V(2, 256, 1, 1, 0)}); !ok {
			t.Fatalf("fill request %d rejected", i)
		}
	}
	// Every server now has 30 free cores but zero free memory.
	s := m.Stranded(V(1, 8, 0, 0, 0)) // probe: tiny machine needing some DRAM
	if s[CPU] < 0.9 {
		t.Fatalf("stranded cpu fraction = %v, want >= 0.9", s[CPU])
	}
}

func TestComposableFabricAccounting(t *testing.T) {
	c := NewComposableFromServers(CommodityServer(), 2)
	p1, ok := c.Allocate(Request{ID: 1, Demand: V(4, 32, 1, 1, 0)})
	if !ok {
		t.Fatal("allocate failed")
	}
	if c.FabricGbps() != c.FabricGbpsPerMachine {
		t.Fatalf("fabric = %v", c.FabricGbps())
	}
	c.Release(p1)
	if c.FabricGbps() != 0 {
		t.Fatalf("fabric after release = %v", c.FabricGbps())
	}
}

func TestReleaseUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewComposableFromServers(CommodityServer(), 1)
	c.Release(Placement{Request: Request{ID: 99}})
}

func TestUtilizationBounds(t *testing.T) {
	spec := CommodityServer()
	m := NewMonolithic(spec, 2, FirstFit)
	m.Allocate(Request{ID: 1, Demand: V(32, 256, 8, 10, 0)})
	u := Utilization(m)
	if math.Abs(u[CPU]-0.5) > 1e-9 {
		t.Fatalf("cpu utilization = %v, want 0.5", u[CPU])
	}
	for _, k := range Kinds() {
		if u[k] < 0 || u[k] > 1 {
			t.Fatalf("utilization[%v] = %v out of range", k, u[k])
		}
	}
}

func TestAllocatorConservationProperty(t *testing.T) {
	// Used + free == capacity through any allocate/release sequence.
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		spec := CommodityServer()
		allocs := []Allocator{
			NewMonolithic(spec, 4, BestFit),
			NewComposableFromServers(spec, 4),
		}
		for _, a := range allocs {
			var live []Placement
			for i := 0; i < 100; i++ {
				if rng.Bool(0.6) || len(live) == 0 {
					d := V(float64(1+rng.Intn(16)), float64(8*(1+rng.Intn(16))), 1, 1, 0)
					if p, ok := a.Allocate(Request{ID: i + 1000, Demand: d}); ok {
						live = append(live, p)
					}
				} else {
					j := rng.Intn(len(live))
					a.Release(live[j])
					live = append(live[:j], live[j+1:]...)
				}
				c, u := a.Capacity(), a.Used()
				for k := range c {
					if u[k] < -1e-6 || u[k] > c[k]+1e-6 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradePlanComposableWins(t *testing.T) {
	p := NewUpgradePlan(8000, 100, 6)
	mono := p.MonolithicCostEUR()
	comp := p.ComposableCostEUR()
	if comp >= mono {
		t.Fatalf("composable (%v) should beat monolithic (%v) over 6 years", comp, mono)
	}
	delta, ratio := p.Savings()
	if delta <= 0 || ratio >= 1 {
		t.Fatalf("savings = %v ratio = %v", delta, ratio)
	}
}

func TestUpgradePlanShortHorizonMonolithicWins(t *testing.T) {
	// Within one refresh cycle nothing is replaced; the composable premium
	// makes monolithic cheaper.
	p := NewUpgradePlan(8000, 100, 1.5)
	if delta, _ := p.Savings(); delta >= 0 {
		t.Fatalf("expected monolithic to win on a 1.5y horizon, delta = %v", delta)
	}
}

func TestRefreshCountExactBoundaries(t *testing.T) {
	p := NewUpgradePlan(1000, 1, 6)
	// CPU cycle 2y on a 6y horizon: refreshes at 2, 4, 6 → but the refresh
	// at exactly year 6 delivers no service, so expect 2 (at years 2, 4)
	// ... unless the model counts t == horizon. Pin the behaviour:
	if n := p.refreshes(2); n != 2 && n != 3 {
		t.Fatalf("refreshes(2) over 6y = %v", n)
	}
	if n := p.refreshes(7); n != 0 {
		t.Fatalf("refreshes(7) over 6y = %v, want 0", n)
	}
}
