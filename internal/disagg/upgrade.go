package disagg

// Upgrade economics (Section IV.A.3: disaggregation "facilitates regular
// upgrades and potentially eliminates the need and cost of replacing entire
// servers"). Resource kinds age at different rates: CPUs are refreshed
// every ~2 years to stay competitive, DRAM every ~4, storage and NICs on
// their own cycles. A monolithic fleet must replace whole servers on the
// fastest cycle; a composable fleet replaces only the sled that aged out.

// RefreshYears returns the representative refresh period per kind.
func RefreshYears() Vector { return V(2, 4, 5, 3, 2.5) }

// CostShares returns the fraction of a server's price attributable to each
// kind (CPU-heavy 2016 2-socket box; shares sum to 1).
func CostShares() Vector { return V(0.45, 0.25, 0.15, 0.05, 0.10) }

// UpgradePlan compares fleet refresh strategies over a horizon.
type UpgradePlan struct {
	ServerPriceEUR float64
	Servers        int
	HorizonYears   float64
	// Shares and Cycles default to CostShares and RefreshYears.
	Shares Vector
	Cycles Vector
	// ComposablePremium scales component cost for the composable fleet
	// (fabric, enclosures, sled packaging); the roadmap expects this to be
	// offset by stranding/upgrade savings. Default 1.15.
	ComposablePremium float64
}

// NewUpgradePlan returns a plan with default shares, cycles and premium.
func NewUpgradePlan(serverPriceEUR float64, servers int, horizonYears float64) *UpgradePlan {
	return &UpgradePlan{
		ServerPriceEUR: serverPriceEUR, Servers: servers, HorizonYears: horizonYears,
		Shares: CostShares(), Cycles: RefreshYears(), ComposablePremium: 1.15,
	}
}

// refreshes returns how many refreshes a cycle of length c incurs strictly
// within the horizon (excluding the initial purchase; a refresh at exactly
// the horizon delivers no service and is not counted).
func (p *UpgradePlan) refreshes(c float64) float64 {
	if c <= 0 {
		return 0
	}
	n := 0.0
	for t := c; t < p.HorizonYears-1e-9; t += c {
		n++
	}
	return n
}

// MonolithicCostEUR returns the horizon cost of keeping a monolithic fleet
// current: the initial purchase plus a whole-server replacement on the
// fastest component cycle (replacing a CPU in a soldered server means
// replacing the server).
func (p *UpgradePlan) MonolithicCostEUR() float64 {
	fastest := p.Cycles[0]
	for _, c := range p.Cycles[1:] {
		if c > 0 && c < fastest {
			fastest = c
		}
	}
	total := p.ServerPriceEUR * float64(p.Servers) // initial
	total += p.refreshes(fastest) * p.ServerPriceEUR * float64(p.Servers)
	return total
}

// ComposableCostEUR returns the horizon cost of the composable fleet: the
// initial purchase at the component premium, plus per-kind sled refreshes
// on each kind's own cycle.
func (p *UpgradePlan) ComposableCostEUR() float64 {
	base := p.ServerPriceEUR * float64(p.Servers) * p.ComposablePremium
	total := base // initial
	for k, cycle := range p.Cycles {
		share := p.Shares[k]
		total += p.refreshes(cycle) * base * share
	}
	return total
}

// Savings returns monolithic minus composable horizon cost (positive means
// disaggregation wins) and the ratio composable/monolithic.
func (p *UpgradePlan) Savings() (deltaEUR, ratio float64) {
	m, c := p.MonolithicCostEUR(), p.ComposableCostEUR()
	if m <= 0 {
		return 0, 0
	}
	return m - c, c / m
}
