package dataflow

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestMapFilterCollect(t *testing.T) {
	d := FromSlice("nums", []int{1, 2, 3, 4, 5, 6}, 3)
	doubled := Map(d, func(x int) int { return x * 2 })
	big := Filter(doubled, func(x int) bool { return x > 6 })
	out, err := Collect(big)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(out)
	want := []int{8, 10, 12}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestNarrowOpsDoNotShuffle(t *testing.T) {
	d := FromSlice("nums", make([]int, 1000), 4)
	m := Map(d, func(x int) int { return x + 1 })
	f := Filter(m, func(x int) bool { return x > 0 })
	if _, err := Collect(f); err != nil {
		t.Fatal(err)
	}
	stages, _, shuffled := d.M.Snapshot()
	if shuffled != 0 {
		t.Fatalf("narrow pipeline shuffled %d records", shuffled)
	}
	if stages != 1 {
		t.Fatalf("narrow pipeline stages = %d, want 1", stages)
	}
}

func TestReduceByKeyCorrectAndShuffles(t *testing.T) {
	recs := workload.RecordStream(7, 5000, 32, 1.0)
	d := FromSlice("recs", recs, 8)
	keyed := KeyBy(d, func(r workload.Record) string { return r.Key })
	summed := ReduceByKey(Map(keyed, func(p Pair[string, workload.Record]) Pair[string, float64] {
		return Pair[string, float64]{Key: p.Key, Val: p.Val.Value}
	}), func(a, b float64) float64 { return a + b })
	out, err := Collect(summed)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, r := range recs {
		want[r.Key] += r.Value
	}
	if len(out) != len(want) {
		t.Fatalf("keys: %d vs %d", len(out), len(want))
	}
	for _, kv := range out {
		if math.Abs(kv.Val-want[kv.Key]) > 1e-6 {
			t.Fatalf("sum[%s] = %v, want %v", kv.Key, kv.Val, want[kv.Key])
		}
	}
	stages, _, shuffled := d.M.Snapshot()
	if stages < 2 {
		t.Fatalf("reduceByKey must add a stage: %d", stages)
	}
	if shuffled != 5000 {
		t.Fatalf("shuffled = %d, want all 5000 pre-aggregation records", shuffled)
	}
}

func TestEachKeyInOnePartitionAfterShuffle(t *testing.T) {
	recs := workload.RecordStream(9, 2000, 16, 0.8)
	d := FromSlice("recs", recs, 8)
	keyed := Map(KeyBy(d, func(r workload.Record) string { return r.Key }),
		func(p Pair[string, workload.Record]) Pair[string, float64] {
			return Pair[string, float64]{Key: p.Key, Val: 1}
		})
	counted := ReduceByKey(keyed, func(a, b float64) float64 { return a + b })
	out, err := Collect(counted)
	if err != nil {
		t.Fatal(err)
	}
	// If a key appeared in two partitions, Collect would return it twice.
	seen := map[string]bool{}
	for _, kv := range out {
		if seen[kv.Key] {
			t.Fatalf("key %s appears in multiple partitions", kv.Key)
		}
		seen[kv.Key] = true
	}
}

func TestGroupByKey(t *testing.T) {
	d := FromSlice("xs", []Pair[string, int]{
		{"a", 1}, {"b", 2}, {"a", 3}, {"b", 4}, {"a", 5},
	}, 2)
	grouped := GroupByKey(d)
	out, err := Collect(grouped)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, kv := range out {
		sum := 0
		for _, v := range kv.Val {
			sum += v
		}
		got[kv.Key] = sum
	}
	if got["a"] != 9 || got["b"] != 6 {
		t.Fatalf("groups = %v", got)
	}
}

func TestJoinInner(t *testing.T) {
	orders := FromSlice("orders", []Pair[int, float64]{
		{1, 10.0}, {2, 20.0}, {1, 30.0}, {3, 5.0},
	}, 2)
	names := FromSlice("names", []Pair[int, string]{
		{1, "alice"}, {2, "bob"},
	}, 2)
	joined := Join(orders, names)
	out, err := Collect(joined)
	if err != nil {
		t.Fatal(err)
	}
	// Customer 3 drops; customer 1 matches twice.
	if len(out) != 3 {
		t.Fatalf("join rows = %d, want 3", len(out))
	}
	total := map[string]float64{}
	for _, kv := range out {
		total[kv.Val.Right] += kv.Val.Left
	}
	if total["alice"] != 40 || total["bob"] != 20 {
		t.Fatalf("joined totals = %v", total)
	}
}

func TestWordCountPipeline(t *testing.T) {
	docs := workload.Corpus(3, 40, 60, 150)
	d := FromSlice("docs", docs, 4)
	words := FlatMap(d, func(doc workload.Doc) []Pair[string, int] {
		out := make([]Pair[string, int], len(doc.Words))
		for i, w := range doc.Words {
			out[i] = Pair[string, int]{Key: w, Val: 1}
		}
		return out
	})
	counts := ReduceByKey(words, func(a, b int) int { return a + b })
	out, err := Collect(counts)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{}
	for _, doc := range docs {
		for _, w := range doc.Words {
			want[w]++
		}
	}
	if len(out) != len(want) {
		t.Fatalf("distinct words %d, want %d", len(out), len(want))
	}
	for _, kv := range out {
		if want[kv.Key] != kv.Val {
			t.Fatalf("count[%s] = %d, want %d", kv.Key, kv.Val, want[kv.Key])
		}
	}
}

func TestCount(t *testing.T) {
	d := FromSlice("xs", make([]int, 57), 5)
	n, err := Count(d)
	if err != nil {
		t.Fatal(err)
	}
	if n != 57 {
		t.Fatalf("count = %d", n)
	}
}

func TestDeterministicCollectOrder(t *testing.T) {
	build := func() []Pair[string, int] {
		recs := workload.RecordStream(5, 500, 8, 1.0)
		d := FromSlice("r", recs, 4)
		keyed := Map(KeyBy(d, func(r workload.Record) string { return r.Key }),
			func(p Pair[string, workload.Record]) Pair[string, int] {
				return Pair[string, int]{Key: p.Key, Val: 1}
			})
		out, err := Collect(ReduceByKey(keyed, func(a, b int) int { return a + b }))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// ---------- Streaming ----------

func synthEvents(n int, keys []string, dt float64) []KeyedEvent {
	out := make([]KeyedEvent, n)
	for i := range out {
		out[i] = KeyedEvent{
			Key:   keys[i%len(keys)],
			Time:  float64(i) * dt,
			Value: 1,
		}
	}
	return out
}

func TestTumblingWindowSumsEverything(t *testing.T) {
	ev := synthEvents(100, []string{"a", "b"}, 0.1) // 10s of events
	res, stats, err := TumblingWindowSum(ev, MicroBatchConfig{WindowS: 1, BatchS: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, r := range res {
		total += r.Sum
	}
	if total != 100 {
		t.Fatalf("window sums total %v, want 100 (no event lost)", total)
	}
	if stats.Batches == 0 {
		t.Fatal("no batches recorded")
	}
	// Windows emitted in order.
	for i := 1; i < len(res); i++ {
		if res[i].WindowStart < res[i-1].WindowStart {
			t.Fatal("windows out of order")
		}
	}
}

func TestSmallerBatchesCutLatency(t *testing.T) {
	// Batch boundaries deliberately misaligned with the 1 s window edge:
	// a window closing mid-batch waits for the batch to end, so coarse
	// batches add up to ~BatchS of emission delay.
	ev := synthEvents(1000, []string{"a", "b", "c"}, 0.01)
	_, coarse, err := TumblingWindowSum(ev, MicroBatchConfig{WindowS: 1, BatchS: 0.75, PerBatchOverheadS: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	_, fine, err := TumblingWindowSum(ev, MicroBatchConfig{WindowS: 1, BatchS: 0.05, PerBatchOverheadS: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if fine.MeanLatencyS >= coarse.MeanLatencyS {
		t.Fatalf("fine batches latency (%v) should beat coarse (%v)", fine.MeanLatencyS, coarse.MeanLatencyS)
	}
	if fine.OverheadS <= coarse.OverheadS {
		t.Fatalf("fine batches must pay more overhead: %v vs %v", fine.OverheadS, coarse.OverheadS)
	}
}

func TestAlignedBatchesEmitAtWindowEdge(t *testing.T) {
	// When BatchS divides WindowS the boundary batch ends exactly at the
	// window edge: latency is just the per-batch overhead.
	ev := synthEvents(400, []string{"a"}, 0.01)
	_, stats, err := TumblingWindowSum(ev, MicroBatchConfig{WindowS: 1, BatchS: 0.1, PerBatchOverheadS: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MeanLatencyS > 0.011 {
		t.Fatalf("aligned batches latency = %v, want ~= overhead 0.01", stats.MeanLatencyS)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, _, err := TumblingWindowSum(nil, MicroBatchConfig{WindowS: 0, BatchS: 1}); err == nil {
		t.Fatal("expected window validation error")
	}
	bad := []KeyedEvent{{Time: 5}, {Time: 1}}
	if _, _, err := TumblingWindowSum(bad, MicroBatchConfig{WindowS: 1, BatchS: 1}); err == nil ||
		!strings.Contains(err.Error(), "out of order") {
		t.Fatalf("expected ordering error, got %v", err)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	res, stats, err := TumblingWindowSum(nil, MicroBatchConfig{WindowS: 1, BatchS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 || stats.MeanLatencyS != 0 {
		t.Fatalf("empty stream gave %v %v", res, stats)
	}
}
