package dataflow_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/stream"
)

// TestTumblingWindowSumParity pins the deprecated micro-batch simulation
// to the real streaming subsystem: the same integer-valued events, the
// same tumbling windows, and every (window, key) pair must carry the
// same sum and count on both paths. The two models disagree about
// emission *time* (micro-batch boundaries vs watermarks) — that is the
// point of the deprecation — but never about window contents.
func TestTumblingWindowSumParity(t *testing.T) {
	// 4096 events at 8 per tick span ticks 0..511 — a whole number of
	// windows, because the micro-batch path never emits a window still
	// open when its event list runs out, while the engine's close
	// flushes partials. Ending on a boundary compares what both define.
	const (
		n       = 4096
		windowS = 8
	)
	// Time-ordered integer-tick events (the legacy path enforces order),
	// four keys, deterministic integer values so float accumulation
	// cannot smear the comparison.
	events := make([]dataflow.KeyedEvent, n)
	for i := range events {
		events[i] = dataflow.KeyedEvent{
			Key:   fmt.Sprintf("sensor-%d", i%4),
			Time:  float64(i / 8),
			Value: float64((i*7 + 3) % 23),
		}
	}
	type cell struct {
		sum   float64
		count int
	}
	type wk struct {
		start int64
		key   string
	}

	legacy := map[wk]cell{}
	results, _, err := dataflow.TumblingWindowSum(events, dataflow.MicroBatchConfig{
		WindowS: windowS, BatchS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		legacy[wk{start: int64(r.WindowStart), key: r.Key}] = cell{sum: r.Sum, count: r.Count}
	}

	eng, err := sql.NewEngine(sql.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.Register(relational.NewRelation("events", relational.Schema{
		{Name: "k", Type: relational.String},
		{Name: "t", Type: relational.Int},
		{Name: "v", Type: relational.Int},
	}))
	sess := eng.Session()
	sub, err := sess.Subscribe(context.Background(),
		"SELECT k, SUM(v) AS s, COUNT(*) AS n FROM events GROUP BY k",
		stream.WindowSpec{TimeCol: "t", Size: windowS})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]relational.Row, len(events))
	for i, e := range events {
		rows[i] = relational.Row{
			relational.StringV(e.Key),
			relational.IntV(int64(e.Time)),
			relational.IntV(int64(e.Value)),
		}
	}
	if _, err := eng.AppendRows("events", rows); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseStream("events"); err != nil {
		t.Fatal(err)
	}
	engine := map[wk]cell{}
	for w := range sub.Out() {
		for _, row := range w.Rows.Rows {
			engine[wk{start: w.Start, key: row[0].S}] = cell{
				sum:   float64(row[1].I),
				count: int(row[2].I),
			}
		}
	}
	if err := sub.Err(); err != nil {
		t.Fatal(err)
	}
	if st := sub.Stats(); st.Dropped != 0 || st.Events != n {
		t.Fatalf("engine stream stats = %+v", st)
	}
	if len(engine) == 0 || len(engine) != len(legacy) {
		t.Fatalf("cell counts diverge: engine %d, legacy %d", len(engine), len(legacy))
	}
	for k, lc := range legacy {
		ec, ok := engine[k]
		if !ok {
			t.Fatalf("window %d key %s missing from engine output", k.start, k.key)
		}
		if ec != lc {
			t.Fatalf("window %d key %s: engine %+v, legacy %+v", k.start, k.key, ec, lc)
		}
	}
}
