// Package dataflow is a Spark/Flink-style dataset engine: lazily-composed
// transformations over partitioned in-memory datasets, with narrow
// operations (map, filter, flatMap) fused into stages and wide operations
// (reduceByKey, groupByKey, join, repartition) introducing shuffle
// boundaries, executed partition-parallel with goroutines. A micro-batch
// streaming layer (stream.go) covers the batch/stream duality the roadmap
// attributes to the Spark and Flink projects (Section IV.C.3). Stage and
// shuffle accounting feeds the E8 abstraction comparison.
package dataflow

import (
	"fmt"
	"sync"
)

// Metrics accumulates execution statistics across one lineage.
type Metrics struct {
	mu       sync.Mutex
	Stages   int
	Tasks    int
	Shuffled int // records crossing a shuffle boundary
}

func (m *Metrics) addStage() { m.mu.Lock(); m.Stages++; m.mu.Unlock() }
func (m *Metrics) addTasks(n int) {
	m.mu.Lock()
	m.Tasks += n
	m.mu.Unlock()
}
func (m *Metrics) addShuffled(n int) {
	m.mu.Lock()
	m.Shuffled += n
	m.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() (stages, tasks, shuffled int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Stages, m.Tasks, m.Shuffled
}

// Dataset is a lazily-evaluated, partitioned collection.
type Dataset[T any] struct {
	Name    string
	NParts  int
	M       *Metrics
	compute func() ([][]T, error)
}

// FromSlice partitions xs into the given number of partitions. The source
// counts as the first stage of its lineage.
func FromSlice[T any](name string, xs []T, partitions int) *Dataset[T] {
	if partitions < 1 {
		partitions = 1
	}
	m := &Metrics{}
	d := &Dataset[T]{Name: name, NParts: partitions, M: m}
	d.compute = func() ([][]T, error) {
		m.addStage()
		m.addTasks(partitions)
		parts := make([][]T, partitions)
		for i, x := range xs {
			p := i % partitions
			parts[p] = append(parts[p], x)
		}
		return parts, nil
	}
	return d
}

// mapPartitions applies f to each partition in parallel (narrow: no stage
// boundary, tasks fuse with the parent conceptually).
func mapPartitions[T, U any](d *Dataset[T], name string, f func([]T) ([]U, error)) *Dataset[U] {
	out := &Dataset[U]{Name: name, NParts: d.NParts, M: d.M}
	out.compute = func() ([][]U, error) {
		parts, err := d.compute()
		if err != nil {
			return nil, err
		}
		res := make([][]U, len(parts))
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res[i], errs[i] = f(parts[i])
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		return res, nil
	}
	return out
}

// Map applies f element-wise.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return mapPartitions(d, d.Name+".map", func(p []T) ([]U, error) {
		out := make([]U, len(p))
		for i, x := range p {
			out[i] = f(x)
		}
		return out, nil
	})
}

// Filter keeps elements where f is true.
func Filter[T any](d *Dataset[T], f func(T) bool) *Dataset[T] {
	return mapPartitions(d, d.Name+".filter", func(p []T) ([]T, error) {
		var out []T
		for _, x := range p {
			if f(x) {
				out = append(out, x)
			}
		}
		return out, nil
	})
}

// FlatMap expands each element into zero or more outputs.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return mapPartitions(d, d.Name+".flatMap", func(p []T) ([]U, error) {
		var out []U
		for _, x := range p {
			out = append(out, f(x)...)
		}
		return out, nil
	})
}

// Pair is a keyed record.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// KeyBy turns a dataset into a keyed dataset.
func KeyBy[T any, K comparable](d *Dataset[T], key func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, func(x T) Pair[K, T] { return Pair[K, T]{Key: key(x), Val: x} })
}

// shuffleByKey redistributes pairs so that each key lands in exactly one
// output partition. It counts a stage boundary and the shuffled records.
func shuffleByKey[K comparable, V any](d *Dataset[Pair[K, V]], name string, parts int) *Dataset[Pair[K, V]] {
	if parts < 1 {
		parts = d.NParts
	}
	out := &Dataset[Pair[K, V]]{Name: name, NParts: parts, M: d.M}
	out.compute = func() ([][]Pair[K, V], error) {
		src, err := d.compute()
		if err != nil {
			return nil, err
		}
		d.M.addStage()
		d.M.addTasks(parts)
		res := make([][]Pair[K, V], parts)
		n := 0
		for _, p := range src {
			for _, kv := range p {
				b := int(fnvAny(kv.Key) % uint64(parts))
				res[b] = append(res[b], kv)
				n++
			}
		}
		d.M.addShuffled(n)
		return res, nil
	}
	return out
}

func fnvAny(k any) uint64 {
	h := uint64(14695981039346656037)
	s := fmt.Sprint(k)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ReduceByKey combines values per key with an associative function (wide:
// shuffles).
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], f func(V, V) V) *Dataset[Pair[K, V]] {
	sh := shuffleByKey(d, d.Name+".reduceByKey", d.NParts)
	return mapPartitions(sh, sh.Name+".combine", func(p []Pair[K, V]) ([]Pair[K, V], error) {
		acc := map[K]V{}
		var order []K
		for _, kv := range p {
			if prev, ok := acc[kv.Key]; ok {
				acc[kv.Key] = f(prev, kv.Val)
			} else {
				acc[kv.Key] = kv.Val
				order = append(order, kv.Key)
			}
		}
		out := make([]Pair[K, V], 0, len(acc))
		for _, k := range order {
			out = append(out, Pair[K, V]{Key: k, Val: acc[k]})
		}
		return out, nil
	})
}

// GroupByKey collects all values per key (wide: shuffles).
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	sh := shuffleByKey(d, d.Name+".groupByKey", d.NParts)
	return mapPartitions(sh, sh.Name+".group", func(p []Pair[K, V]) ([]Pair[K, []V], error) {
		acc := map[K][]V{}
		var order []K
		for _, kv := range p {
			if _, ok := acc[kv.Key]; !ok {
				order = append(order, kv.Key)
			}
			acc[kv.Key] = append(acc[kv.Key], kv.Val)
		}
		out := make([]Pair[K, []V], 0, len(acc))
		for _, k := range order {
			out = append(out, Pair[K, []V]{Key: k, Val: acc[k]})
		}
		return out, nil
	})
}

// Joined is one inner-join output row.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// Join computes the inner equi-join of two keyed datasets (wide: shuffles
// both sides).
func Join[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) *Dataset[Pair[K, Joined[V, W]]] {
	if a.M != b.M {
		// Merge lineages: adopt a's metrics for the join output, but still
		// count b's execution in b's metrics.
		b = &Dataset[Pair[K, W]]{Name: b.Name, NParts: b.NParts, M: b.M, compute: b.compute}
	}
	parts := a.NParts
	if b.NParts > parts {
		parts = b.NParts
	}
	sa := shuffleByKey(a, a.Name+".joinL", parts)
	sb := shuffleByKey(b, b.Name+".joinR", parts)
	out := &Dataset[Pair[K, Joined[V, W]]]{Name: a.Name + "⋈" + b.Name, NParts: parts, M: a.M}
	out.compute = func() ([][]Pair[K, Joined[V, W]], error) {
		pa, err := sa.compute()
		if err != nil {
			return nil, err
		}
		pb, err := sb.compute()
		if err != nil {
			return nil, err
		}
		res := make([][]Pair[K, Joined[V, W]], parts)
		var wg sync.WaitGroup
		for i := 0; i < parts; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				table := map[K][]V{}
				for _, kv := range pa[i] {
					table[kv.Key] = append(table[kv.Key], kv.Val)
				}
				for _, kw := range pb[i] {
					for _, v := range table[kw.Key] {
						res[i] = append(res[i], Pair[K, Joined[V, W]]{
							Key: kw.Key, Val: Joined[V, W]{Left: v, Right: kw.Val},
						})
					}
				}
			}(i)
		}
		wg.Wait()
		return res, nil
	}
	return out
}

// Collect materializes the dataset into one slice (partition order, then
// intra-partition order — deterministic for a fixed partition count).
func Collect[T any](d *Dataset[T]) ([]T, error) {
	parts, err := d.compute()
	if err != nil {
		return nil, err
	}
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Count materializes and counts.
func Count[T any](d *Dataset[T]) (int, error) {
	parts, err := d.compute()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n, nil
}
