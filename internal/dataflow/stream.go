package dataflow

import (
	"fmt"
	"sort"
)

// KeyedEvent is one timestamped record of a stream.
type KeyedEvent struct {
	Key   string
	Time  float64 // event time, seconds
	Value float64
}

// WindowResult is the aggregate of one (key, window) pair.
type WindowResult struct {
	Key         string
	WindowStart float64
	Sum         float64
	Count       int
	// EmitTime is when the engine produced the result; EmitTime minus
	// window end is the result latency.
	EmitTime float64
}

// Latency returns result latency relative to the window end.
func (w WindowResult) Latency(windowS float64) float64 {
	return w.EmitTime - (w.WindowStart + windowS)
}

// MicroBatchConfig drives the streaming engine.
type MicroBatchConfig struct {
	// WindowS is the tumbling-window length.
	WindowS float64
	// BatchS is the micro-batch interval: results for a closed window are
	// emitted at the end of the batch that passes the window boundary —
	// the Spark-Streaming-style latency/overhead knob.
	BatchS float64
	// PerBatchOverheadS is the fixed scheduling cost charged per batch.
	PerBatchOverheadS float64
}

// StreamStats summarizes one streaming run.
type StreamStats struct {
	Batches      int
	OverheadS    float64
	MeanLatencyS float64
	MaxLatencyS  float64
}

// TumblingWindowSum processes time-ordered events through a micro-batch
// engine, summing values per (key, tumbling window). Events must be sorted
// by Time (enforced). Results are ordered by (window, key).
//
// Deprecated: this is the standalone micro-batch model study from the
// early dataflow experiments — a closed-form simulation over float
// timestamps, detached from the relational engine. Streaming now runs
// on the engine itself: register a relation, append through
// sql.Session.StreamSource (or POST /v1/stream), and attach a
// continuous query with sql.Session.Subscribe — windows are maintained
// incrementally by internal/stream with watermark-driven emission,
// late/dropped accounting, spill-under-budget and distributed ingest
// billing, none of which this function models. It is kept for the
// micro-batch latency/overhead comparison in examples/streaming and
// internal/experiments; TestTumblingWindowSumParity pins its window
// contents to the real subsystem's.
func TumblingWindowSum(events []KeyedEvent, cfg MicroBatchConfig) ([]WindowResult, StreamStats, error) {
	if cfg.WindowS <= 0 || cfg.BatchS <= 0 {
		return nil, StreamStats{}, fmt.Errorf("dataflow: window and batch must be positive")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			return nil, StreamStats{}, fmt.Errorf("dataflow: events out of order at %d", i)
		}
	}
	type wkey struct {
		start float64
		key   string
	}
	open := map[wkey]*WindowResult{}
	var results []WindowResult
	stats := StreamStats{}

	var horizon float64 // end of the last event's batch
	if len(events) > 0 {
		horizon = events[len(events)-1].Time
	}
	// Process batch by batch. Batch boundaries are computed as k×BatchS
	// (not accumulated) so floating-point drift cannot push a boundary
	// just below a window edge and delay emission by a full batch.
	batch := 1
	batchEnd := cfg.BatchS
	i := 0
	emitClosed := func(watermark, emitAt float64) {
		var due []wkey
		for k := range open {
			if k.start+cfg.WindowS <= watermark {
				due = append(due, k)
			}
		}
		sort.Slice(due, func(a, b int) bool {
			if due[a].start != due[b].start {
				return due[a].start < due[b].start
			}
			return due[a].key < due[b].key
		})
		for _, k := range due {
			r := *open[k]
			r.EmitTime = emitAt
			results = append(results, r)
			delete(open, k)
		}
	}
	for batchEnd <= horizon+cfg.BatchS {
		// Ingest events of this batch.
		for i < len(events) && events[i].Time < batchEnd {
			e := events[i]
			start := float64(int(e.Time/cfg.WindowS)) * cfg.WindowS
			k := wkey{start: start, key: e.Key}
			w, ok := open[k]
			if !ok {
				w = &WindowResult{Key: e.Key, WindowStart: start}
				open[k] = w
			}
			w.Sum += e.Value
			w.Count++
			i++
		}
		stats.Batches++
		stats.OverheadS += cfg.PerBatchOverheadS
		// Watermark = batch end; emit closed windows at the end of batch
		// processing (including the per-batch overhead).
		emitClosed(batchEnd, batchEnd+cfg.PerBatchOverheadS)
		if i >= len(events) && len(open) == 0 {
			break
		}
		batch++
		batchEnd = float64(batch) * cfg.BatchS
	}
	// Latency stats.
	if len(results) > 0 {
		total := 0.0
		for _, r := range results {
			l := r.Latency(cfg.WindowS)
			total += l
			if l > stats.MaxLatencyS {
				stats.MaxLatencyS = l
			}
		}
		stats.MeanLatencyS = total / float64(len(results))
	}
	return results, stats, nil
}
