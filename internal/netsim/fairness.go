package netsim

// maxMinRates computes progressive-filling max-min fair rates for all
// active flows over directed links.
func (s *Simulator) maxMinRates() {
	// Build directed-link usage sets.
	type linkState struct {
		cap      float64
		unfrozen []*Flow
	}
	links := map[dirLink]*linkState{}
	flowLinks := map[int][]dirLink{}
	for _, f := range s.flows {
		f.rate = 0
		var dls []dirLink
		for i, lid := range f.Path.LinkIDs {
			forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
			dl := dirLinkID(lid, forward)
			dls = append(dls, dl)
			st, ok := links[dl]
			if !ok {
				st = &linkState{cap: s.Net.Links[lid].Speed.BytesPerSec()}
				links[dl] = st
			}
			st.unfrozen = append(st.unfrozen, f)
		}
		flowLinks[f.ID] = dls
	}
	frozen := map[int]bool{}
	for len(frozen) < len(s.flows) {
		// Find the bottleneck: the link with the smallest fair share among
		// links that still carry unfrozen flows.
		var bottleneck *linkState
		bestShare := 0.0
		for _, st := range links {
			n := 0
			for _, f := range st.unfrozen {
				if !frozen[f.ID] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := st.cap / float64(n)
			if bottleneck == nil || share < bestShare {
				bottleneck = st
				bestShare = share
			}
		}
		if bottleneck == nil {
			// Remaining flows traverse no capacity-constrained links
			// (shouldn't happen on real topologies); give them a huge rate.
			for _, f := range s.flows {
				if !frozen[f.ID] {
					f.rate = 1e18
					frozen[f.ID] = true
				}
			}
			return
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share,
		// then charge that rate against every link those flows use.
		for _, f := range bottleneck.unfrozen {
			if frozen[f.ID] {
				continue
			}
			f.rate = bestShare
			frozen[f.ID] = true
			for _, dl := range flowLinks[f.ID] {
				links[dl].cap -= bestShare
				if links[dl].cap < 0 {
					links[dl].cap = 0
				}
			}
		}
	}
}

// proportionalRates is the single-pass ablation baseline: each flow's rate
// is the minimum over its path of capacity divided by the number of flows
// sharing that directed link. It never overbooks a link but can leave
// capacity stranded relative to max-min.
func (s *Simulator) proportionalRates() {
	counts := map[dirLink]int{}
	for _, f := range s.flows {
		for i, lid := range f.Path.LinkIDs {
			forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
			counts[dirLinkID(lid, forward)]++
		}
	}
	for _, f := range s.flows {
		rate := -1.0
		for i, lid := range f.Path.LinkIDs {
			forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
			dl := dirLinkID(lid, forward)
			share := s.Net.Links[lid].Speed.BytesPerSec() / float64(counts[dl])
			if rate < 0 || share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 1e18
		}
		f.rate = rate
	}
}
