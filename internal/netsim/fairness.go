package netsim

import "sort"

// sortedFlowIDs returns the active flow IDs in ascending order. Rate
// computation and progress charging iterate flows in this order: Go map
// iteration order would otherwise vary the float accumulation order and
// bottleneck tie-breaks run to run, making simulations non-reproducible
// (ties between equal fair shares flipped by last-ulp residue).
func (s *Simulator) sortedFlowIDs() []int {
	ids := make([]int, 0, len(s.flows))
	for id := range s.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// maxMinRates computes progressive-filling weighted max-min fair rates
// for all active flows over directed links. Each link's fair share is
// computed per unit of weight (capacity over the sum of unfrozen flow
// weights), and a flow frozen at a bottleneck receives share × weight —
// so a weight-3 flow gets three times a weight-1 flow's rate on a shared
// bottleneck. With every weight exactly 1 the arithmetic reduces
// bit-identically to the unweighted allocator: the weight sum of n flows
// accumulates to exactly float64(n), and multiplying a share by 1.0 is
// the identity.
func (s *Simulator) maxMinRates() {
	// Build directed-link usage sets, visiting flows in ID order and
	// remembering links in first-use order so every run processes the
	// same topology identically.
	type linkState struct {
		cap      float64
		unfrozen []*Flow
	}
	links := map[dirLink]*linkState{}
	flowLinks := map[int][]dirLink{}
	var linkOrder []dirLink
	flowIDs := s.sortedFlowIDs()
	for _, id := range flowIDs {
		f := s.flows[id]
		f.rate = 0
		var dls []dirLink
		for i, lid := range f.Path.LinkIDs {
			forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
			dl := dirLinkID(lid, forward)
			dls = append(dls, dl)
			st, ok := links[dl]
			if !ok {
				st = &linkState{cap: s.Net.Links[lid].Speed.BytesPerSec()}
				links[dl] = st
				linkOrder = append(linkOrder, dl)
			}
			st.unfrozen = append(st.unfrozen, f)
		}
		flowLinks[f.ID] = dls
	}
	frozen := map[int]bool{}
	for len(frozen) < len(s.flows) {
		// Find the bottleneck: the link with the smallest per-weight fair
		// share among links that still carry unfrozen flows (ties break
		// toward the earliest-seen link, deterministically).
		var bottleneck *linkState
		bestShare := 0.0
		for _, dl := range linkOrder {
			st := links[dl]
			sumW := 0.0
			for _, f := range st.unfrozen {
				if !frozen[f.ID] {
					sumW += f.Weight
				}
			}
			if sumW == 0 {
				continue
			}
			share := st.cap / sumW
			if bottleneck == nil || share < bestShare {
				bottleneck = st
				bestShare = share
			}
		}
		if bottleneck == nil {
			// Remaining flows traverse no capacity-constrained links
			// (shouldn't happen on real topologies); give them a huge rate.
			for _, id := range flowIDs {
				f := s.flows[id]
				if !frozen[f.ID] {
					f.rate = 1e18
					frozen[f.ID] = true
				}
			}
			return
		}
		// Freeze every unfrozen flow crossing the bottleneck at its
		// weighted share, then charge that rate against every link those
		// flows use.
		for _, f := range bottleneck.unfrozen {
			if frozen[f.ID] {
				continue
			}
			f.rate = bestShare * f.Weight
			frozen[f.ID] = true
			for _, dl := range flowLinks[f.ID] {
				links[dl].cap -= f.rate
				if links[dl].cap < 0 {
					links[dl].cap = 0
				}
			}
		}
	}
}

// proportionalRates is the single-pass ablation baseline: each flow's rate
// is the minimum over its path of capacity divided by the number of flows
// sharing that directed link. It never overbooks a link but can leave
// capacity stranded relative to max-min.
func (s *Simulator) proportionalRates() {
	counts := map[dirLink]int{}
	for _, f := range s.flows {
		for i, lid := range f.Path.LinkIDs {
			forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
			counts[dirLinkID(lid, forward)]++
		}
	}
	for _, f := range s.flows {
		rate := -1.0
		for i, lid := range f.Path.LinkIDs {
			forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
			dl := dirLinkID(lid, forward)
			share := s.Net.Links[lid].Speed.BytesPerSec() / float64(counts[dl])
			if rate < 0 || share < rate {
				rate = share
			}
		}
		if rate < 0 {
			rate = 1e18
		}
		f.rate = rate
	}
}
