package netsim

import "repro/internal/topo"

// The fabric control-plane API. The data plane — weighted max-min rate
// allocation over seeded-ECMP routes — runs fixed policy at line rate; a
// Controller is the programmable layer above it. Between admission
// rounds the Admission layer shows the controller everything about to
// enter the fabric (the pending flows with their default routes, classes
// and weights, plus the cumulative per-link load) and lets it override
// any flow's path or scheduling weight before a byte moves. This is the
// roadmap's SDN thesis as an executable seam: "SDN helps Big Data to
// optimize access to data" means load-aware rerouting and per-tenant
// prioritization live in software above the fabric, not in the fairness
// model.
//
// internal/sdn.NetController is the reference implementation (flow-table
// backed routing with LRU rule eviction and a pluggable policy catalog);
// a nil controller leaves every flow on its default seeded-ECMP route at
// its requested weight, which replays bit-identically with the
// pre-control-plane fabric.

// PendingFlow is one flow awaiting admission, as a Controller observes
// it: the request plus the route and weight the data plane would use if
// the controller stays silent.
type PendingFlow struct {
	// Party identifies the submitting workload (stable across its rounds).
	Party int
	// Src, Dst, Bytes echo the FlowReq.
	Src, Dst int
	Bytes    float64
	// Class is the flow's QoS class tag ("" = best-effort). Classes feed
	// policy decisions and per-class byte attribution; they have no
	// effect on the data plane by themselves.
	Class string
	// Weight is the effective requested scheduling weight (defaulted to
	// 1) the weighted max-min allocator will use absent an override.
	Weight float64
	// Seed is the per-party ECMP seed that selected Path.
	Seed int
	// Path is the default seeded-ECMP route.
	Path topo.Path
}

// Decision is a controller's override for one pending flow. The zero
// Decision keeps the flow's defaults.
type Decision struct {
	// Path, when non-nil, replaces the default route. It must be a valid
	// path from the flow's Src to its Dst over the fabric's links;
	// invalid overrides are rejected (counted in
	// AdmissionStats.RejectedOverrides) and the default route used.
	Path *topo.Path
	// Weight, when positive, replaces the flow's scheduling weight.
	Weight float64
}

// RoundState is everything a Controller observes about one admission
// round before it runs.
type RoundState struct {
	// Round is the round ordinal (0-based) on this admission layer.
	Round int
	// Net is the fabric topology; controllers that were constructed
	// before the fabric existed bind their topology view from it lazily.
	Net *topo.Network
	// Pending lists the round's flows in admission order: parties by ID,
	// each party's requests in submission order.
	Pending []PendingFlow
	// Loads is the cumulative per-directed-link byte count over the
	// fabric's whole life (the Util fields are meaningless between
	// rounds; window them against AdmissionStats.BusySeconds).
	Loads []LinkLoad
	// DeltaLoads is the previous round's per-directed-link traffic
	// window: Bytes is what each link carried in that round alone and
	// Util is its utilization over that round's makespan. Nil before any
	// round has run. This is the "recent load" signal policies should
	// prefer over the lifetime totals in Loads.
	DeltaLoads []LinkLoad
	// UtilEWMA is the exponentially-weighted moving average of per-round
	// directed-link utilization (indexed like Loads), nil before any
	// round has run. Hot links decay as traffic moves, so policies
	// reacting to it chase where load is, not where it has ever been.
	UtilEWMA []float64
	// LastRoundSeconds is the previous round's makespan (0 before any
	// round): the window over which DeltaLoads' utilization was taken,
	// and the natural horizon for converting UtilEWMA back into bytes.
	LastRoundSeconds float64
}

// Controller is a programmable fabric control plane: it observes each
// admission round's pending flows and link state and returns per-flow
// routing/weight overrides. decisions[i] applies to Pending[i]; a short
// (or nil) slice leaves the remaining flows on their defaults.
//
// Admit is called with the admission layer's lock held, once per round,
// from whichever goroutine triggered the round: implementations must not
// block, must not call back into the Admission layer, and need no
// internal locking as calls are serialized.
type Controller interface {
	Admit(st *RoundState) []Decision
}

// validPath reports whether p is a well-formed src->dst walk over net's
// links. The admission layer refuses malformed controller overrides
// rather than charging bytes to links a flow never crossed.
func validPath(net *topo.Network, p topo.Path, src, dst int) bool {
	if len(p.NodeIDs) == 0 || p.NodeIDs[0] != src || p.NodeIDs[len(p.NodeIDs)-1] != dst {
		return false
	}
	if len(p.LinkIDs) != len(p.NodeIDs)-1 {
		return false
	}
	for i, lid := range p.LinkIDs {
		if lid < 0 || lid >= len(net.Links) {
			return false
		}
		l := net.Links[lid]
		a, b := p.NodeIDs[i], p.NodeIDs[i+1]
		if !(l.A == a && l.B == b) && !(l.A == b && l.B == a) {
			return false
		}
	}
	return true
}
