package netsim

import (
	"math"
	"testing"

	"repro/internal/topo"
)

// almostEq compares with relative tolerance (analytic expectations vs
// progressive-filling arithmetic).
func almostEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// TestWeightedMaxMinShares: two equal flows into one bottleneck at
// weights 3:1 split its capacity 3:1, so the weighted flow finishes in
// a third of the time its peer would need at that point; after it
// retires, the survivor takes the full link.
func TestWeightedMaxMinShares(t *testing.T) {
	a := NewAdmission(admissionSim()) // SingleSwitch(4, Gen10)
	p := a.Join(nil)
	defer p.Leave()
	const bytes = 1e7
	cap := topo.Gen10.BytesPerSec()
	_, flows, err := p.Submit([]FlowReq{
		{Src: 0, Dst: 1, Bytes: bytes, Weight: 3},
		{Src: 2, Dst: 1, Bytes: bytes, Weight: 1},
	})
	if err != nil || len(flows) != 2 {
		t.Fatalf("flows=%d err=%v", len(flows), err)
	}
	prop := flows[0].Path.DelayNS(a.sim.Net) * 1e-9
	// Weighted flow: rate 3/4 cap until done.
	wantFast := bytes/(0.75*cap) + prop
	// Peer: rate 1/4 cap until t1, then the full link.
	t1 := bytes / (0.75 * cap)
	wantSlow := t1 + (bytes-t1*0.25*cap)/cap + prop
	if got := flows[0].FCT(); !almostEq(got, wantFast) {
		t.Fatalf("weighted FCT %.9f, want %.9f", got, wantFast)
	}
	if got := flows[1].FCT(); !almostEq(got, wantSlow) {
		t.Fatalf("best-effort FCT %.9f, want %.9f", got, wantSlow)
	}
	if flows[0].Weight != 3 || flows[1].Weight != 1 {
		t.Fatalf("flow weights %v / %v", flows[0].Weight, flows[1].Weight)
	}
}

// TestUniformWeightsBitIdentical: explicit weight-1 QoS submissions and
// plain submissions produce bit-identical round outcomes — the
// weighted allocator degenerates exactly to the unweighted one.
func TestUniformWeightsBitIdentical(t *testing.T) {
	reqsPlain := []FlowReq{{Src: 0, Dst: 1, Bytes: 3e6}, {Src: 2, Dst: 1, Bytes: 1e6}}
	reqsQoS := []FlowReq{
		{Src: 0, Dst: 1, Bytes: 3e6, Weight: 1, Class: "batch"},
		{Src: 2, Dst: 1, Bytes: 1e6, Weight: 1, Class: "batch"},
	}
	run := func(reqs []FlowReq, qos bool) float64 {
		a := NewAdmission(admissionSim())
		var p *Party
		if qos {
			p = a.JoinQoS(nil, "batch", 1)
		} else {
			p = a.Join(nil)
		}
		defer p.Leave()
		sec, _, err := p.Submit(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}
	plain, qos := run(reqsPlain, false), run(reqsQoS, true)
	if plain != qos {
		t.Fatalf("uniform weights must be bit-identical: %v vs %v", plain, qos)
	}
}

// recordingController captures what it observed and applies scripted
// decisions.
type recordingController struct {
	states    []*RoundState
	decisions func(st *RoundState) []Decision
}

func (c *recordingController) Admit(st *RoundState) []Decision {
	c.states = append(c.states, st)
	if c.decisions == nil {
		return nil
	}
	return c.decisions(st)
}

func twoSpineSim() *Simulator {
	return NewSimulator(topo.LeafSpine(topo.LeafSpineSpec{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2,
		HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40,
	}))
}

// TestControllerObservesRound: the controller sees every pending flow
// with its default route, class, weight and the fabric's link loads.
func TestControllerObservesRound(t *testing.T) {
	ctl := &recordingController{}
	a := NewAdmission(twoSpineSim())
	a.SetController(ctl)
	p := a.JoinQoS(nil, "interactive", 2)
	defer p.Leave()
	if _, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 2, Bytes: 1e6}}); err != nil {
		t.Fatal(err)
	}
	if len(ctl.states) != 1 {
		t.Fatalf("controller saw %d rounds, want 1", len(ctl.states))
	}
	st := ctl.states[0]
	if len(st.Pending) != 1 || st.Net == nil || st.Round != 0 {
		t.Fatalf("round state: %+v", st)
	}
	pf := st.Pending[0]
	if pf.Src != 0 || pf.Dst != 2 || pf.Class != "interactive" || pf.Weight != 2 || len(pf.Path.LinkIDs) == 0 {
		t.Fatalf("pending flow: %+v", pf)
	}
}

// TestControllerPathOverride: a controller-supplied route replaces the
// default ECMP pick, and the rerouted flow charges its bytes to the
// override's links, not the default's.
func TestControllerPathOverride(t *testing.T) {
	sim := twoSpineSim()
	// Hosts 0 (leaf0) and 2 (leaf1) have exactly two spine choices.
	choices := sim.Net.ECMPPaths(0, 2, 8)
	if len(choices) != 2 {
		t.Fatalf("want 2 ECMP paths, got %d", len(choices))
	}
	ctl := &recordingController{decisions: func(st *RoundState) []Decision {
		def := st.Pending[0].Path
		for _, c := range choices {
			same := len(c.LinkIDs) == len(def.LinkIDs)
			if same {
				for i := range c.LinkIDs {
					if c.LinkIDs[i] != def.LinkIDs[i] {
						same = false
						break
					}
				}
			}
			if !same {
				alt := c
				return []Decision{{Path: &alt}}
			}
		}
		t.Fatal("no alternative path found")
		return nil
	}}
	a := NewAdmission(sim)
	a.SetController(ctl)
	p := a.Join(nil)
	defer p.Leave()
	_, flows, err := p.Submit([]FlowReq{{Src: 0, Dst: 2, Bytes: 1e6}})
	if err != nil || len(flows) != 1 {
		t.Fatalf("flows=%d err=%v", len(flows), err)
	}
	def := ctl.states[0].Pending[0].Path
	if samePathIDs(flows[0].Path, def) {
		t.Fatal("flow kept its default path despite the override")
	}
	if st := a.Stats(); st.PathOverrides != 1 || st.RejectedOverrides != 0 {
		t.Fatalf("override counters: %+v", st)
	}
	// Bytes landed on the override's links and not on the default's
	// spine hop (first differing link).
	loads := map[int]float64{}
	for _, l := range a.LinkLoads() {
		loads[l.LinkID] += l.Bytes
	}
	for _, lid := range flows[0].Path.LinkIDs {
		if loads[lid] == 0 {
			t.Fatalf("override link %d carried no bytes", lid)
		}
	}
	for i, lid := range def.LinkIDs {
		if lid != flows[0].Path.LinkIDs[i] && loads[lid] != 0 {
			t.Fatalf("default-only link %d still carried bytes", lid)
		}
	}
}

// TestControllerInvalidOverrideRejected: a malformed path override is
// refused — the flow runs on its default route and the rejection is
// counted — rather than corrupting link accounting.
func TestControllerInvalidOverrideRejected(t *testing.T) {
	bogus := topo.Path{NodeIDs: []int{0, 99}, LinkIDs: []int{0}}
	ctl := &recordingController{decisions: func(st *RoundState) []Decision {
		return []Decision{{Path: &bogus}}
	}}
	a := NewAdmission(twoSpineSim())
	a.SetController(ctl)
	p := a.Join(nil)
	defer p.Leave()
	sec, flows, err := p.Submit([]FlowReq{{Src: 0, Dst: 2, Bytes: 1e6}})
	if err != nil || sec <= 0 || len(flows) != 1 || !flows[0].Done {
		t.Fatalf("sec=%v flows=%d err=%v", sec, len(flows), err)
	}
	if !samePathIDs(flows[0].Path, ctl.states[0].Pending[0].Path) {
		t.Fatal("rejected override must keep the default path")
	}
	if st := a.Stats(); st.PathOverrides != 0 || st.RejectedOverrides != 1 {
		t.Fatalf("override counters: %+v", st)
	}
}

// TestControllerWeightOverride: a controller-assigned weight shapes
// rates exactly like a requested weight.
func TestControllerWeightOverride(t *testing.T) {
	ctl := &recordingController{decisions: func(st *RoundState) []Decision {
		return []Decision{{Weight: 3}} // second flow keeps weight 1
	}}
	a := NewAdmission(admissionSim())
	a.SetController(ctl)
	p := a.Join(nil)
	defer p.Leave()
	const bytes = 1e7
	_, flows, err := p.Submit([]FlowReq{
		{Src: 0, Dst: 1, Bytes: bytes},
		{Src: 2, Dst: 1, Bytes: bytes},
	})
	if err != nil || len(flows) != 2 {
		t.Fatalf("flows=%d err=%v", len(flows), err)
	}
	cap := topo.Gen10.BytesPerSec()
	prop := flows[0].Path.DelayNS(a.sim.Net) * 1e-9
	if got, want := flows[0].FCT(), bytes/(0.75*cap)+prop; !almostEq(got, want) {
		t.Fatalf("reweighted FCT %.9f, want %.9f", got, want)
	}
}

// TestAdmissionClassBytes: admitted bytes are attributed to the
// effective class of each flow (request override beats party default).
func TestAdmissionClassBytes(t *testing.T) {
	a := NewAdmission(admissionSim())
	p := a.JoinQoS(nil, "batch", 0)
	defer p.Leave()
	if _, _, err := p.Submit([]FlowReq{
		{Src: 0, Dst: 1, Bytes: 2e6},
		{Src: 2, Dst: 1, Bytes: 1e6, Class: "interactive"},
		{Src: 3, Dst: 1, Bytes: 5e5},
	}); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.ClassBytes["batch"] != 2.5e6 || st.ClassBytes["interactive"] != 1e6 {
		t.Fatalf("class bytes: %+v", st.ClassBytes)
	}
	ps := p.Stats()
	if ps.RoundsJoined != 1 || ps.Class != "batch" || ps.Weight != 1 || ps.BarrierWaitSeconds < 0 {
		t.Fatalf("party stats: %+v", ps)
	}
}

func samePathIDs(a, b topo.Path) bool {
	if len(a.LinkIDs) != len(b.LinkIDs) {
		return false
	}
	for i := range a.LinkIDs {
		if a.LinkIDs[i] != b.LinkIDs[i] {
			return false
		}
	}
	return true
}
