package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/topo"
)

func admissionSim() *Simulator {
	return NewSimulator(topo.SingleSwitch(4, topo.Gen10))
}

// TestAdmissionSingleParty: a lone party's submission runs immediately
// and reports a positive makespan.
func TestAdmissionSingleParty(t *testing.T) {
	a := NewAdmission(admissionSim())
	p := a.Join(nil)
	sec, flows, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}})
	if err != nil || sec <= 0 || len(flows) != 1 || !flows[0].Done {
		t.Fatalf("sec=%v flows=%d err=%v", sec, len(flows), err)
	}
	if sec2, flows2, err := p.Submit(nil); err != nil || sec2 != 0 || flows2 != nil {
		t.Fatalf("empty submission must be a no-op: %v %v %v", sec2, flows2, err)
	}
	st := a.Stats()
	if st.Rounds != 1 || st.PeakFlows != 1 || st.PeakParties != 1 || st.BusySeconds <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	p.Leave()
}

// TestAdmissionRoundsContend: with an Expect barrier, two concurrent
// parties share one round; flows crossing the same link complete slower
// than either party alone.
func TestAdmissionRoundsContend(t *testing.T) {
	solo := func() float64 {
		a := NewAdmission(admissionSim())
		p := a.Join(nil)
		defer p.Leave()
		sec, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e7}})
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}()

	a := NewAdmission(admissionSim())
	a.Expect(2)
	secs := make([]float64, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := a.Join(nil)
			defer p.Leave()
			var err error
			// Both parties dump onto host 1's downlink (from hosts 0 and 2).
			secs[i], _, err = p.Submit([]FlowReq{{Src: i * 2, Dst: 1, Bytes: 1e7}})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := a.Stats()
	if st.Rounds != 1 || st.PeakParties != 2 || st.PeakFlows != 2 {
		t.Fatalf("expected one shared round, got %+v", st)
	}
	for i, sec := range secs {
		if sec <= solo {
			t.Fatalf("party %d: contended %.6fs must exceed solo %.6fs", i, sec, solo)
		}
	}
}

// TestAdmissionRepeatable: identical sequential submissions on one
// long-lived admission layer complete in bit-identical time (the
// per-round clock reset at work).
func TestAdmissionRepeatable(t *testing.T) {
	a := NewAdmission(admissionSim())
	p := a.Join(nil)
	defer p.Leave()
	var first float64
	for i := 0; i < 3; i++ {
		sec, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 3e6}, {Src: 2, Dst: 1, Bytes: 1e6}})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sec
		} else if sec != first {
			t.Fatalf("round %d took %v, first took %v", i, sec, first)
		}
	}
}

// TestAdmissionLeaveUnblocks: a party leaving (query finished or failed
// before moving data) releases waiters and clamps the Expect floor.
func TestAdmissionLeaveUnblocks(t *testing.T) {
	a := NewAdmission(admissionSim())
	a.Expect(2)
	p1 := a.Join(nil)
	done := make(chan float64, 1)
	go func() {
		sec, _, err := p1.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}})
		if err != nil {
			t.Error(err)
		}
		done <- sec
	}()
	p2 := a.Join(nil)
	select {
	case <-done:
		t.Fatal("round ran before the floor was satisfied or released")
	case <-time.After(100 * time.Millisecond):
	}
	p2.Leave() // floor clamps to 1, p1's round runs
	select {
	case sec := <-done:
		if sec <= 0 {
			t.Fatalf("sec=%v", sec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leave did not release the barrier")
	}
	p1.Leave()
}

// TestAdmissionWithdrawReleasesFloor: when an expected party dies before
// ever joining (plan error upstream), Withdraw must release its Expect
// slot so survivors' rounds run — the launcher-side deadlock guard.
func TestAdmissionWithdrawReleasesFloor(t *testing.T) {
	a := NewAdmission(admissionSim())
	a.Expect(2)
	p := a.Join(nil)
	done := make(chan float64, 1)
	go func() {
		sec, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}})
		if err != nil {
			t.Error(err)
		}
		done <- sec
	}()
	select {
	case <-done:
		t.Fatal("round ran below the Expect floor")
	case <-time.After(100 * time.Millisecond):
	}
	a.Withdraw() // the second workload failed before joining
	select {
	case sec := <-done:
		if sec <= 0 {
			t.Fatalf("sec=%v", sec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("withdraw did not release the barrier")
	}
	p.Leave()
}

// TestAdmissionCancelWithdraws: a cancelled party parked at the barrier
// withdraws its submission and reports the cancellation cause.
func TestAdmissionCancelWithdraws(t *testing.T) {
	a := NewAdmission(admissionSim())
	a.Expect(2)
	cause := errors.New("cancelled")
	var mu sync.Mutex
	var tripped bool
	p := a.Join(func() error {
		mu.Lock()
		defer mu.Unlock()
		if tripped {
			return cause
		}
		return nil
	})
	done := make(chan error, 1)
	go func() {
		_, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	tripped = true
	mu.Unlock()
	a.Wake()
	select {
	case err := <-done:
		if !errors.Is(err, cause) {
			t.Fatalf("expected cancellation cause, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unpark Submit")
	}
	p.Leave()
}

// TestAdmissionBadRequest: a rejected request surfaces as the
// submission's error without wedging later rounds.
func TestAdmissionBadRequest(t *testing.T) {
	a := NewAdmission(admissionSim())
	p := a.Join(nil)
	defer p.Leave()
	if _, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: -1}}); err == nil {
		t.Fatal("expected flow-size error")
	}
	if sec, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}}); err != nil || sec <= 0 {
		t.Fatalf("fabric wedged after bad request: %v %v", sec, err)
	}
}
