package netsim

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func singleLinkNet() *topo.Network {
	n := topo.New()
	a := n.AddNode(topo.Host, "a")
	b := n.AddNode(topo.Host, "b")
	n.AddLink(a, b, topo.Gen10, 0)
	return n
}

func TestSingleFlowUsesFullLink(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	bytes := 1.25e9 // exactly one second at 10 GbE
	f, err := s.StartFlow(0, 1, bytes)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !f.Done {
		t.Fatal("flow did not finish")
	}
	if math.Abs(f.FCT()-1.0) > 1e-6 {
		t.Fatalf("FCT = %v, want ~1s", f.FCT())
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	bytes := 1.25e9
	f1, _ := s.StartFlow(0, 1, bytes)
	f2, _ := s.StartFlow(0, 1, bytes)
	s.Run()
	// Two equal flows sharing one link: both finish at ~2s.
	if math.Abs(f1.FCT()-2.0) > 1e-6 || math.Abs(f2.FCT()-2.0) > 1e-6 {
		t.Fatalf("FCTs = %v, %v; want ~2s each", f1.FCT(), f2.FCT())
	}
}

func TestShortFlowFreesCapacity(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	long, _ := s.StartFlow(0, 1, 1.25e9)  // 1s alone
	short, _ := s.StartFlow(0, 1, 1.25e8) // 0.1s alone
	s.Run()
	// Shared until the short one finishes at 0.2s; the long one then gets
	// the whole link: 1.25e9-0.125e9 remaining / full rate = 0.9s more.
	if math.Abs(short.FCT()-0.2) > 1e-6 {
		t.Fatalf("short FCT = %v, want 0.2", short.FCT())
	}
	if math.Abs(long.FCT()-1.1) > 1e-6 {
		t.Fatalf("long FCT = %v, want 1.1", long.FCT())
	}
}

func TestReverseDirectionsIndependent(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	f1, _ := s.StartFlow(0, 1, 1.25e9)
	f2, _ := s.StartFlow(1, 0, 1.25e9)
	s.Run()
	// Full duplex: both directions carry the full 10 GbE.
	if math.Abs(f1.FCT()-1.0) > 1e-6 || math.Abs(f2.FCT()-1.0) > 1e-6 {
		t.Fatalf("FCTs = %v, %v; want ~1s each (full duplex)", f1.FCT(), f2.FCT())
	}
}

func TestMaxMinBeatsProportionalOnAsymmetry(t *testing.T) {
	// Two-hop chain a--m--b where one flow crosses both links and one flow
	// uses only the second link. Max-min gives the single-link flow the
	// leftover capacity; proportional strands it.
	build := func() *topo.Network {
		n := topo.New()
		a := n.AddNode(topo.Host, "a")
		m := n.AddNode(topo.ToR, "m")
		b := n.AddNode(topo.Host, "b")
		c := n.AddNode(topo.Host, "c")
		n.AddLink(a, m, topo.Gen10, 0)
		n.AddLink(m, b, topo.Gen10, 0)
		n.AddLink(c, m, topo.Gen40, 0) // c has a fat uplink
		return n
	}
	run := func(mode Fairness) float64 {
		s := NewSimulator(build())
		s.Fairness = mode
		// Flow 1: a->b crosses the 10G chain. Flow 2: c->b shares only m->b.
		s.StartFlow(0, 2, 1.25e9)
		s.StartFlow(3, 2, 1.25e9)
		s.Run()
		return s.FCTs().Max()
	}
	mm := run(MaxMin)
	pr := run(Proportional)
	if mm > pr+1e-9 {
		t.Fatalf("max-min slower than proportional: %v vs %v", mm, pr)
	}
}

func TestLeafSpineShuffleCompletes(t *testing.T) {
	net := topo.LeafSpine(topo.LeafSpineSpec{Leaves: 4, Spines: 2, HostsPerLeaf: 4, HostSpeed: topo.Gen10, FabricSpeed: topo.Gen40})
	s := NewSimulator(net)
	hosts := net.Hosts()
	// all-to-all shuffle of 10 MB
	count := 0
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				if _, err := s.StartFlow(src, dst, 1e7); err != nil {
					t.Fatal(err)
				}
				count++
			}
		}
	}
	s.Run()
	if s.FCTs().N() != count {
		t.Fatalf("completed %d of %d flows", s.FCTs().N(), count)
	}
	if s.ActiveFlows() != 0 {
		t.Fatalf("%d flows still active", s.ActiveFlows())
	}
	if s.BytesDelivered() != float64(count)*1e7 {
		t.Fatalf("bytes = %v", s.BytesDelivered())
	}
}

func TestFasterFabricShortensShuffle(t *testing.T) {
	run := func(fabric topo.GbE) float64 {
		net := topo.LeafSpine(topo.LeafSpineSpec{Leaves: 4, Spines: 2, HostsPerLeaf: 4, HostSpeed: topo.Gen40, FabricSpeed: fabric})
		s := NewSimulator(net)
		hosts := net.Hosts()
		for _, src := range hosts {
			for _, dst := range hosts {
				if src != dst {
					s.StartFlow(src, dst, 1e8)
				}
			}
		}
		s.Run()
		return s.FCTs().Max()
	}
	slow := run(topo.Gen10)
	fast := run(topo.Gen100)
	if fast >= slow {
		t.Fatalf("100GbE shuffle (%vs) not faster than 10GbE (%vs)", fast, slow)
	}
}

func TestScheduleFlowDeferredInjection(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	s.ScheduleFlow(5, 0, 1, 1.25e9)
	s.Run()
	if s.FCTs().N() != 1 {
		t.Fatal("deferred flow did not run")
	}
	if now := float64(s.Engine.Now()); math.Abs(now-6.0) > 1e-6 {
		t.Fatalf("finished at %v, want 6", now)
	}
}

func TestOnFlowDoneCallback(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	var got []int
	s.OnFlowDone(func(f *Flow) { got = append(got, f.ID) })
	s.StartFlow(0, 1, 1e6)
	s.Run()
	if len(got) != 1 {
		t.Fatalf("callback fired %d times", len(got))
	}
}

func TestStartFlowErrors(t *testing.T) {
	n := topo.New()
	n.AddNode(topo.Host, "a")
	n.AddNode(topo.Host, "b")
	s := NewSimulator(n)
	if _, err := s.StartFlow(0, 1, 100); err == nil {
		t.Fatal("expected no-route error")
	}
	s2 := NewSimulator(singleLinkNet())
	if _, err := s2.StartFlow(0, 1, 0); err == nil {
		t.Fatal("expected size error")
	}
}

func TestLinkUtilizationBounded(t *testing.T) {
	s := NewSimulator(singleLinkNet())
	s.StartFlow(0, 1, 1.25e9)
	s.Run()
	u := s.MeanLinkUtilization()
	if u < 0 || u > 1.0001 {
		t.Fatalf("utilization = %v", u)
	}
	// One direction fully busy, the other idle: mean across both = 0.5.
	if math.Abs(u-0.5) > 0.01 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestStationMM1Latency(t *testing.T) {
	// M/M/1 with lambda=50, mu=100: expected sojourn 1/(mu-lambda) = 20ms.
	e := sim.NewEngine()
	st := NewStation(e, 1)
	rng := sim.NewRNG(42)
	arr := sim.NewPoisson(rng.Split(), 50)
	srv := rng.Split()
	n := 50000
	t0 := sim.Time(0)
	for i := 0; i < n; i++ {
		t0 += arr.NextGap()
		e.At(t0, func() {
			st.Submit(sim.Time(srv.Exp(100)), nil)
		})
	}
	e.Run()
	if st.Departed() != n {
		t.Fatalf("departed %d of %d", st.Departed(), n)
	}
	mean := st.Latency().Mean()
	if mean < 0.017 || mean > 0.023 {
		t.Fatalf("M/M/1 mean sojourn = %v, want ~0.020", mean)
	}
}

func TestStationMoreServersCutTail(t *testing.T) {
	run := func(k int) float64 {
		e := sim.NewEngine()
		st := NewStation(e, k)
		rng := sim.NewRNG(7)
		arr := sim.NewPoisson(rng.Split(), 80*float64(k)/2) // keep per-server load at 80% of mu=... careful
		srv := rng.Split()
		t0 := sim.Time(0)
		for i := 0; i < 20000; i++ {
			t0 += arr.NextGap()
			e.At(t0, func() { st.Submit(sim.Time(srv.Exp(100)), nil) })
		}
		e.Run()
		return st.Latency().P99()
	}
	// Same offered load per server; pooling (k=4) beats k=2 at the tail.
	if p4, p2 := run(4), run(2); p4 >= p2 {
		t.Fatalf("pooling did not cut tail: k=4 p99 %v >= k=2 p99 %v", p4, p2)
	}
}

func TestStationQueueStats(t *testing.T) {
	e := sim.NewEngine()
	st := NewStation(e, 1)
	// Three unit jobs arriving together: queue builds to 2.
	for i := 0; i < 3; i++ {
		e.At(0, func() { st.Submit(1, nil) })
	}
	e.Run()
	if st.Departed() != 3 {
		t.Fatalf("departed = %d", st.Departed())
	}
	if st.QueueLenMean() <= 0 {
		t.Fatal("queue length never observed")
	}
	if st.ServiceTimes().Mean() != 1 {
		t.Fatalf("service mean = %v", st.ServiceTimes().Mean())
	}
}
