package netsim

import (
	"fmt"
	"sort"
	"sync"
)

// Admission is the concurrent-safe flow-admission layer over one shared
// Simulator. The Simulator itself is single-goroutine: flows injected at
// different wall-clock instants would also need a rule for how much
// virtual time separates them. Admission supplies both at once with a
// bulk-synchronous round protocol:
//
//   - Each concurrent workload (a distributed SQL query, typically)
//     Joins as a Party and Submits one batch of flows per communication
//     phase, blocking until the batch completes.
//   - A round admits the pending submission of every joined party at the
//     same virtual instant and runs the simulator until all of the
//     round's flows complete. Flows of concurrently executing parties
//     therefore coexist on the fabric and contend under the simulator's
//     fairness model — the whole point of sharing the simulator.
//   - A round only starts once every joined party has a submission
//     pending (parties between phases are computing; the fabric waits
//     for them), so round membership — and with it every rate
//     allocation — is reproducible for a fixed interleaving of joins.
//
// The virtual clock resets to zero at each round start (the simulator is
// idle between rounds), so identical rounds replay with bit-identical
// arithmetic no matter how much virtual time earlier rounds consumed;
// BusySeconds accumulates the round makespans for utilization windows.
//
// All methods are safe for concurrent use.
type Admission struct {
	mu   sync.Mutex
	cond *sync.Cond
	sim  *Simulator

	parties map[int]*Party
	nextID  int
	// floor delays rounds until at least floor parties have joined; it is
	// consumed by the first round that runs (and clamped when a party
	// leaves), so a one-shot Expect cannot deadlock later traffic.
	floor int

	stats AdmissionStats
}

// AdmissionStats aggregates fabric-wide contention counters across every
// round the admission layer has run.
type AdmissionStats struct {
	// Rounds is the number of admission rounds executed.
	Rounds int
	// PeakFlows is the most flows that coexisted in one round.
	PeakFlows int
	// PeakParties is the most parties whose flows shared one round.
	PeakParties int
	// BusySeconds sums round makespans: the virtual time during which the
	// fabric carried at least one flow.
	BusySeconds float64
	// Bytes is the total bytes admitted.
	Bytes float64
}

// FlowReq is one requested flow of a submission.
type FlowReq struct {
	Src, Dst int
	Bytes    float64
}

// Party is one workload's handle on the admission layer.
type Party struct {
	a         *Admission
	id        int
	seed      int
	cancelled func() error
	pending   *submission
	left      bool
}

// submission is one pending phase: the requests going in, and the
// completed flows plus the phase makespan coming out.
type submission struct {
	reqs    []FlowReq
	flows   []*Flow
	seconds float64
	done    bool
	err     error
}

// NewAdmission returns an admission layer over sim. The simulator must
// not be driven directly once admission owns it.
func NewAdmission(sim *Simulator) *Admission {
	a := &Admission{sim: sim, parties: map[int]*Party{}}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Join registers a new party. cancelled, if non-nil, is polled while the
// party waits at the round barrier: a non-nil return abandons the wait
// (pair it with Wake so cancellation interrupts a parked Submit).
func (a *Admission) Join(cancelled func() error) *Party {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := &Party{a: a, id: a.nextID, cancelled: cancelled}
	a.nextID++
	a.parties[p.id] = p
	return p
}

// Expect delays the next round until at least n parties have joined.
// Callers launching a known-size batch of concurrent workloads use it to
// guarantee the first round contains all of them regardless of how the
// goroutines interleave. The floor is consumed by the first round that
// runs and clamped whenever a party leaves, so it cannot wedge the
// fabric if a workload finishes (or fails) without ever sending.
func (a *Admission) Expect(n int) {
	a.mu.Lock()
	a.floor = n
	a.mu.Unlock()
}

// Withdraw lowers the Expect floor by one: an expected party will not
// arrive (its workload failed before ever joining). Launchers that
// Expect(n) and fan out n workloads MUST call Withdraw on any path where
// a workload dies pre-join, or the surviving parties park at the round
// barrier forever.
func (a *Admission) Withdraw() {
	a.mu.Lock()
	if a.floor > 0 {
		a.floor--
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Wake re-evaluates every parked Submit (used by cancellation hooks).
func (a *Admission) Wake() {
	a.mu.Lock()
	a.cond.Broadcast()
	a.mu.Unlock()
}

// Stats returns a snapshot of the aggregate contention counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// LinkLoads snapshots the shared simulator's cumulative per-link bytes.
// The Util fields are meaningless here — the clock rewinds between
// rounds — so callers must window utilization against Stats().BusySeconds
// themselves.
func (a *Admission) LinkLoads() []LinkLoad {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sim.LinkLoads()
}

// Submit offers one phase worth of flows and blocks until the round
// containing them completes, returning the phase makespan in seconds
// (admission to last completion, including propagation) and the
// completed flows. An empty request returns immediately without joining
// a round. Submit returns the party's cancellation error if it trips
// while the phase is still queued.
func (p *Party) Submit(reqs []FlowReq) (float64, []*Flow, error) {
	if len(reqs) == 0 {
		return 0, nil, nil
	}
	a := p.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.left {
		return 0, nil, fmt.Errorf("netsim: submit after leave")
	}
	sub := &submission{reqs: reqs}
	p.pending = sub
	a.cond.Broadcast()
	for !sub.done {
		if err := p.cancelErr(); err != nil && p.pending == sub {
			// Withdraw the queued phase so the barrier does not wait on a
			// cancelled party.
			p.pending = nil
			a.cond.Broadcast()
			return 0, nil, err
		}
		if a.ready() {
			a.runRound()
			continue
		}
		a.cond.Wait()
	}
	if sub.err != nil {
		return 0, nil, sub.err
	}
	return sub.seconds, sub.flows, nil
}

// Leave deregisters the party. Remaining parties stop waiting for it at
// the round barrier. Leave is idempotent.
func (p *Party) Leave() {
	a := p.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.left {
		return
	}
	p.left = true
	delete(a.parties, p.id)
	if a.floor > len(a.parties) {
		a.floor = len(a.parties)
	}
	a.cond.Broadcast()
}

func (p *Party) cancelErr() error {
	if p.cancelled == nil {
		return nil
	}
	return p.cancelled()
}

// ready reports whether a round may run: the floor is met and every
// joined party has a phase pending. Callers hold a.mu.
func (a *Admission) ready() bool {
	if len(a.parties) == 0 || len(a.parties) < a.floor {
		return false
	}
	for _, p := range a.parties {
		if p.pending == nil {
			return false
		}
	}
	return true
}

// runRound admits every pending submission at virtual time zero, runs
// the simulator until all of the round's flows complete, and records
// per-submission makespans. Callers hold a.mu; the round runs entirely
// under the lock, so waiters only ever observe completed rounds.
func (a *Admission) runRound() {
	a.sim.ResetClock()
	// Deterministic injection order: parties by ID, requests in
	// submission order; each party consumes its own ECMP seed sequence.
	ids := make([]int, 0, len(a.parties))
	for id := range a.parties {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	subs := make([]*submission, 0, len(ids))
	nflows := 0
	for _, id := range ids {
		p := a.parties[id]
		sub := p.pending
		p.pending = nil
		sub.done = true
		for _, r := range sub.reqs {
			f, err := a.sim.StartFlowSeeded(r.Src, r.Dst, r.Bytes, p.seed)
			p.seed++
			if err != nil {
				if sub.err == nil {
					sub.err = err
				}
				continue
			}
			sub.flows = append(sub.flows, f)
			nflows++
			a.stats.Bytes += r.Bytes
		}
		subs = append(subs, sub)
	}
	a.sim.Run()
	for _, sub := range subs {
		for _, f := range sub.flows {
			if sec := float64(f.End); sec > sub.seconds {
				sub.seconds = sec
			}
		}
	}
	a.stats.Rounds++
	if nflows > a.stats.PeakFlows {
		a.stats.PeakFlows = nflows
	}
	if len(subs) > a.stats.PeakParties {
		a.stats.PeakParties = len(subs)
	}
	a.stats.BusySeconds += float64(a.sim.Engine.Now())
	a.floor = 0
	a.cond.Broadcast()
}
