package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/topo"
)

// Admission is the concurrent-safe flow-admission layer over one shared
// Simulator. The Simulator itself is single-goroutine: flows injected at
// different wall-clock instants would also need a rule for how much
// virtual time separates them. Admission supplies both at once with a
// bulk-synchronous round protocol:
//
//   - Each concurrent workload (a distributed SQL query, typically)
//     Joins as a Party and Submits one batch of flows per communication
//     phase, blocking until the batch completes.
//   - A round admits the pending submission of every joined party at the
//     same virtual instant and runs the simulator until all of the
//     round's flows complete. Flows of concurrently executing parties
//     therefore coexist on the fabric and contend under the simulator's
//     fairness model — the whole point of sharing the simulator.
//   - A round only starts once every joined party has a submission
//     pending (parties between phases are computing; the fabric waits
//     for them), so round membership — and with it every rate
//     allocation — is reproducible for a fixed interleaving of joins.
//
// The virtual clock resets to zero at each round start (the simulator is
// idle between rounds), so identical rounds replay with bit-identical
// arithmetic no matter how much virtual time earlier rounds consumed;
// BusySeconds accumulates the round makespans for utilization windows.
//
// Pipelined workloads split a phase into chunks and offer each via
// SubmitEager: an eager submission triggers a sub-round immediately with
// whatever submissions are pending, instead of waiting for every party
// to reach a phase boundary. Parties with a normal Submit queued are
// carried along (no starvation at the barrier); parties still computing
// are simply not waited for. See SubmitEager for the determinism
// contract.
//
// All methods are safe for concurrent use.
type Admission struct {
	mu   sync.Mutex
	cond *sync.Cond
	sim  *Simulator
	ctl  Controller

	parties map[int]*Party
	nextID  int
	// floor delays rounds until at least floor parties have joined; it is
	// consumed by the first round that runs (and clamped when a party
	// leaves), so a one-shot Expect cannot deadlock later traffic.
	floor int

	stats AdmissionStats

	// Load-telemetry windows (fed to controllers via RoundState): the
	// cumulative per-directed-link bytes at the end of the previous
	// round, that round's deltas, the per-link utilization EWMA across
	// rounds, and the previous round's makespan.
	prevLinkBytes []float64
	lastDelta     []LinkLoad
	utilEWMA      []float64
	lastRoundSec  float64
}

// utilEWMAAlpha weights the newest round's per-link utilization into the
// running average controllers observe: half-life of one round keeps the
// signal recent without flapping on a single quiet round.
const utilEWMAAlpha = 0.5

// AdmissionStats aggregates fabric-wide contention counters across every
// round the admission layer has run.
type AdmissionStats struct {
	// Rounds is the number of admission rounds executed.
	Rounds int
	// PeakFlows is the most flows that coexisted in one round.
	PeakFlows int
	// PeakParties is the most parties whose flows shared one round.
	PeakParties int
	// BusySeconds sums round makespans: the virtual time during which the
	// fabric carried at least one flow.
	BusySeconds float64
	// Bytes is the total bytes admitted.
	Bytes float64
	// ClassBytes attributes admitted bytes to QoS classes ("" is
	// best-effort traffic).
	ClassBytes map[string]float64
	// PathOverrides counts flows the controller rerouted off their
	// default ECMP path; RejectedOverrides counts malformed controller
	// path overrides that were refused (the flow kept its default route).
	PathOverrides     int
	RejectedOverrides int
	// EagerRounds counts rounds that ran before every joined party had a
	// submission pending — the pipelined sub-rounds of SubmitEager. A
	// fabric with no pipelined traffic reports zero.
	EagerRounds int
}

// FlowReq is one requested flow of a submission. Class and Weight
// override the party's defaults for this flow alone; zero values
// inherit (and an unset weight everywhere means uniform weight 1, the
// pre-control-plane behaviour).
type FlowReq struct {
	Src, Dst int
	Bytes    float64
	Class    string
	Weight   float64
}

// Party is one workload's handle on the admission layer.
type Party struct {
	a         *Admission
	id        int
	seed      int
	cancelled func() error
	pending   *submission
	left      bool

	class  string
	weight float64
	pstats PartyStats
}

// PartyStats is the per-party slice of the admission accounting: how
// many rounds this party's phases joined, how long its submissions
// waited at the round barrier, and the QoS identity its flows carried.
// It is the per-query admission report the SQL layer surfaces next to
// the per-query network stats.
type PartyStats struct {
	// RoundsJoined counts admission rounds that carried a submission of
	// this party.
	RoundsJoined int
	// BarrierWaitSeconds accumulates wall-clock time the party's phases
	// spent parked between being offered and their round being admitted
	// — the queueing delay imposed by waiting for concurrent parties to
	// reach their own communication phases. The rounds' simulator
	// execution is excluded, so an uncontended party's wait is ~zero.
	BarrierWaitSeconds float64
	// Class and Weight are the party's QoS defaults (weight 0 reads as 1).
	Class  string
	Weight float64
	// SubRounds counts this party's eager submissions (pipelined chunks)
	// that were admitted — each is one sub-round the party triggered (or
	// joined without waiting for the full barrier). Zero for parties that
	// only ever Submit.
	SubRounds int
}

// submission is one pending phase: the requests going in, and the
// completed flows plus the phase makespan coming out. queued stamps the
// enqueue instant so the round that admits the phase can charge the
// barrier wait (enqueue to round start — excluding the round's own
// simulator execution).
type submission struct {
	reqs    []FlowReq
	queued  time.Time
	flows   []*Flow
	seconds float64
	done    bool
	eager   bool
	err     error
}

// NewAdmission returns an admission layer over sim. The simulator must
// not be driven directly once admission owns it.
func NewAdmission(sim *Simulator) *Admission {
	a := &Admission{sim: sim, parties: map[int]*Party{}}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Join registers a new party. cancelled, if non-nil, is polled while the
// party waits at the round barrier: a non-nil return abandons the wait
// (pair it with Wake so cancellation interrupts a parked Submit).
func (a *Admission) Join(cancelled func() error) *Party {
	return a.JoinQoS(cancelled, "", 0)
}

// JoinQoS is Join with a QoS identity: class tags the party's flows for
// per-class attribution and controller policies, and weight (when
// positive) is the default scheduling weight of its flows under the
// weighted max-min allocator. Individual FlowReqs may override both.
func (a *Admission) JoinQoS(cancelled func() error, class string, weight float64) *Party {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := &Party{a: a, id: a.nextID, cancelled: cancelled, class: class, weight: weight}
	p.pstats.Class = class
	p.pstats.Weight = weight
	if p.pstats.Weight <= 0 {
		p.pstats.Weight = 1
	}
	a.nextID++
	a.parties[p.id] = p
	// A join can complete an eager sub-round's floor (it can never
	// complete ready(), which needs the newcomer pending too), so parked
	// eager submitters must re-evaluate.
	a.cond.Broadcast()
	return p
}

// SetController installs (or, with nil, removes) the fabric controller
// consulted between rounds. Install it before traffic flows: the round
// in flight when the controller changes keeps the policy it started
// with, but there is no synchronization beyond the admission lock.
// Load-telemetry windows start at installation: a controller installed
// mid-life sees deltas relative to that point, not the fabric's whole
// history collapsed into one "round".
func (a *Admission) SetController(c Controller) {
	a.mu.Lock()
	if c != nil && a.prevLinkBytes == nil {
		loads := a.sim.LinkLoads()
		a.prevLinkBytes = make([]float64, len(loads))
		for i, l := range loads {
			a.prevLinkBytes[i] = l.Bytes
		}
	}
	a.ctl = c
	a.mu.Unlock()
}

// Expect delays the next round until at least n parties have joined.
// Callers launching a known-size batch of concurrent workloads use it to
// guarantee the first round contains all of them regardless of how the
// goroutines interleave. The floor is consumed by the first round that
// runs and clamped whenever a party leaves, so it cannot wedge the
// fabric if a workload finishes (or fails) without ever sending.
func (a *Admission) Expect(n int) {
	a.mu.Lock()
	a.floor = n
	a.mu.Unlock()
}

// Withdraw lowers the Expect floor by one: an expected party will not
// arrive (its workload failed before ever joining). Launchers that
// Expect(n) and fan out n workloads MUST call Withdraw on any path where
// a workload dies pre-join, or the surviving parties park at the round
// barrier forever.
func (a *Admission) Withdraw() {
	a.mu.Lock()
	if a.floor > 0 {
		a.floor--
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Wake re-evaluates every parked Submit (used by cancellation hooks).
func (a *Admission) Wake() {
	a.mu.Lock()
	a.cond.Broadcast()
	a.mu.Unlock()
}

// MutateNet runs fn against the simulator's topology under the admission
// lock. Rounds run entirely inside that lock and the allocator reads
// link speeds live at every reallocation, so a mutation (degrading a
// dead host's access links, partitioning a rack) is atomic with respect
// to rate allocation and takes effect from the next round. fn must not
// add or remove links or nodes — only mutate attributes of existing
// ones (Speed, DelayNS) — and must never set a speed to zero, which
// would wedge any flow crossing the link.
func (a *Admission) MutateNet(fn func(*topo.Network)) {
	a.mu.Lock()
	fn(a.sim.Net)
	a.mu.Unlock()
}

// Stats returns a snapshot of the aggregate contention counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	if a.stats.ClassBytes != nil {
		st.ClassBytes = make(map[string]float64, len(a.stats.ClassBytes))
		for k, v := range a.stats.ClassBytes {
			st.ClassBytes[k] = v
		}
	}
	return st
}

// LinkLoads snapshots the shared simulator's cumulative per-link bytes.
// The Util fields are meaningless here — the clock rewinds between
// rounds — so callers must window utilization against Stats().BusySeconds
// themselves.
func (a *Admission) LinkLoads() []LinkLoad {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sim.LinkLoads()
}

// Submit offers one phase worth of flows and blocks until the round
// containing them completes, returning the phase makespan in seconds
// (admission to last completion, including propagation) and the
// completed flows. An empty request returns immediately without joining
// a round. Submit returns the party's cancellation error if it trips
// while the phase is still queued.
func (p *Party) Submit(reqs []FlowReq) (float64, []*Flow, error) {
	return p.submit(reqs, false)
}

// SubmitEager is Submit for pipelined sub-rounds: instead of waiting for
// every joined party to reach a communication phase, it triggers a round
// immediately (floor permitting) with whatever submissions are pending
// right now. Parties that happen to have a phase queued are carried
// along — a bulk-synchronous query is never starved by a pipelined
// neighbour's chunk stream — while parties still computing are simply
// not waited for, which is what lets chunk k's flows drain while the
// receiver digests chunk k-1.
//
// A solo party's eager rounds replay bit-identically (same membership,
// same seeded ECMP sequence); when several parties pipeline at once,
// sub-round membership depends on wall-clock interleaving, which is the
// determinism the caller trades for overlap.
func (p *Party) SubmitEager(reqs []FlowReq) (float64, []*Flow, error) {
	return p.submit(reqs, true)
}

func (p *Party) submit(reqs []FlowReq, eager bool) (float64, []*Flow, error) {
	if len(reqs) == 0 {
		return 0, nil, nil
	}
	a := p.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.left {
		return 0, nil, fmt.Errorf("netsim: submit after leave")
	}
	sub := &submission{reqs: reqs, queued: time.Now(), eager: eager}
	p.pending = sub
	a.cond.Broadcast()
	for !sub.done {
		if err := p.cancelErr(); err != nil && p.pending == sub {
			// Withdraw the queued phase so the barrier does not wait on a
			// cancelled party.
			p.pending = nil
			a.cond.Broadcast()
			return 0, nil, err
		}
		if a.ready() || a.eagerPending() {
			a.runRound()
			continue
		}
		a.cond.Wait()
	}
	if sub.err != nil {
		return 0, nil, sub.err
	}
	return sub.seconds, sub.flows, nil
}

// Leave deregisters the party. Remaining parties stop waiting for it at
// the round barrier. Leave is idempotent.
func (p *Party) Leave() {
	a := p.a
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.left {
		return
	}
	p.left = true
	delete(a.parties, p.id)
	if a.floor > len(a.parties) {
		a.floor = len(a.parties)
	}
	a.cond.Broadcast()
}

func (p *Party) cancelErr() error {
	if p.cancelled == nil {
		return nil
	}
	return p.cancelled()
}

// Stats snapshots the party's admission accounting. It remains readable
// after Leave (queries read it while finalizing their reports).
func (p *Party) Stats() PartyStats {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	return p.pstats
}

// ready reports whether a round may run: the floor is met and every
// joined party has a phase pending. Callers hold a.mu.
func (a *Admission) ready() bool {
	if len(a.parties) == 0 || len(a.parties) < a.floor {
		return false
	}
	for _, p := range a.parties {
		if p.pending == nil {
			return false
		}
	}
	return true
}

// eagerPending reports whether a pipelined sub-round may run: the floor
// is met and at least one pending submission is eager. Unlike ready(),
// parties with nothing pending do not hold the round back. Callers hold
// a.mu.
func (a *Admission) eagerPending() bool {
	if len(a.parties) == 0 || len(a.parties) < a.floor {
		return false
	}
	for _, p := range a.parties {
		if p.pending != nil && p.pending.eager {
			return true
		}
	}
	return false
}

// runRound admits every pending submission at virtual time zero, runs
// the simulator until all of the round's flows complete, and records
// per-submission makespans. In a bulk-synchronous round every party has
// a submission; in an eager sub-round parties that are still computing
// have none and are skipped. Between collecting the round's requests and
// injecting them, the controller (if any) observes the pending flows
// plus link state and may override any flow's route or weight. Callers
// hold a.mu; the round runs entirely under the lock, so waiters only
// ever observe completed rounds.
func (a *Admission) runRound() {
	a.sim.ResetClock()
	// Deterministic admission order: parties by ID, requests in
	// submission order; each party consumes its own ECMP seed sequence.
	ids := make([]int, 0, len(a.parties))
	for id := range a.parties {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	eagerRound := !a.ready()
	subs := make([]*submission, 0, len(ids))
	// First pass: route every admissible request on its default seeded
	// ECMP path and resolve its effective QoS identity. Requests that
	// fail validation or routing record the submission's error exactly as
	// direct injection used to, and consume their ECMP seed either way.
	type candidate struct {
		sub *submission
		pf  PendingFlow
	}
	var cands []candidate
	now := time.Now()
	for _, id := range ids {
		p := a.parties[id]
		sub := p.pending
		if sub == nil {
			// Eager sub-round: this party is mid-compute; it joins a later
			// round with its next phase.
			continue
		}
		p.pending = nil
		sub.done = true
		p.pstats.RoundsJoined++
		if sub.eager {
			p.pstats.SubRounds++
		}
		p.pstats.BarrierWaitSeconds += now.Sub(sub.queued).Seconds()
		for _, r := range sub.reqs {
			seed := p.seed
			p.seed++
			if r.Bytes <= 0 {
				if sub.err == nil {
					sub.err = fmt.Errorf("netsim: flow size must be positive, got %v", r.Bytes)
				}
				continue
			}
			path, ok := a.sim.Net.PickECMP(r.Src, r.Dst, seed, a.sim.ECMPWidth)
			if !ok {
				if sub.err == nil {
					sub.err = fmt.Errorf("netsim: no route %d -> %d", r.Src, r.Dst)
				}
				continue
			}
			class, weight := r.Class, r.Weight
			if class == "" {
				class = p.class
			}
			if weight <= 0 {
				weight = p.weight
			}
			if weight <= 0 {
				weight = 1
			}
			cands = append(cands, candidate{sub: sub, pf: PendingFlow{
				Party: p.id, Src: r.Src, Dst: r.Dst, Bytes: r.Bytes,
				Class: class, Weight: weight, Seed: seed, Path: path,
			}})
		}
		subs = append(subs, sub)
	}
	// Control plane: the controller observes the round and overrides
	// routes/weights. A nil controller (or a zero Decision) leaves every
	// flow on its default path at its requested weight, which is the
	// bit-identical pre-control-plane data plane.
	var decisions []Decision
	if a.ctl != nil && len(cands) > 0 {
		st := &RoundState{
			Round: a.stats.Rounds, Net: a.sim.Net, Loads: a.sim.LinkLoads(),
			// Telemetry windows: the previous round's per-link deltas and
			// the utilization EWMA (both copied — controllers must not
			// reach back into admission state).
			DeltaLoads:       append([]LinkLoad(nil), a.lastDelta...),
			UtilEWMA:         append([]float64(nil), a.utilEWMA...),
			LastRoundSeconds: a.lastRoundSec,
		}
		st.Pending = make([]PendingFlow, len(cands))
		for i, c := range cands {
			st.Pending[i] = c.pf
		}
		decisions = a.ctl.Admit(st)
	}
	nflows := 0
	for i, c := range cands {
		pf := c.pf
		path, weight := pf.Path, pf.Weight
		if i < len(decisions) {
			d := decisions[i]
			if d.Weight > 0 {
				weight = d.Weight
			}
			if d.Path != nil {
				if validPath(a.sim.Net, *d.Path, pf.Src, pf.Dst) {
					path = *d.Path
					a.stats.PathOverrides++
				} else {
					a.stats.RejectedOverrides++
				}
			}
		}
		f, err := a.sim.StartFlowRouted(pf.Src, pf.Dst, pf.Bytes, path, weight, pf.Class)
		if err != nil {
			if c.sub.err == nil {
				c.sub.err = err
			}
			continue
		}
		c.sub.flows = append(c.sub.flows, f)
		nflows++
		a.stats.Bytes += pf.Bytes
		if a.stats.ClassBytes == nil {
			a.stats.ClassBytes = map[string]float64{}
		}
		a.stats.ClassBytes[pf.Class] += pf.Bytes
	}
	a.sim.Run()
	if a.ctl != nil {
		// Telemetry windows exist for controllers; the nil-controller
		// fabric skips the per-round bookkeeping nobody could observe.
		a.updateLoadWindows()
	}
	for _, sub := range subs {
		for _, f := range sub.flows {
			if sec := float64(f.End); sec > sub.seconds {
				sub.seconds = sec
			}
		}
	}
	a.stats.Rounds++
	if eagerRound {
		a.stats.EagerRounds++
	}
	if nflows > a.stats.PeakFlows {
		a.stats.PeakFlows = nflows
	}
	if len(subs) > a.stats.PeakParties {
		a.stats.PeakParties = len(subs)
	}
	a.stats.BusySeconds += float64(a.sim.Engine.Now())
	a.floor = 0
	a.cond.Broadcast()
}

// updateLoadWindows rolls the load-telemetry windows forward over the
// round that just ran: per-directed-link byte deltas, that round's
// utilization (delta over the round makespan), and the cross-round
// utilization EWMA. Callers hold a.mu; runs after the round's simulator
// execution while the virtual clock still reads the round makespan.
func (a *Admission) updateLoadWindows() {
	loads := a.sim.LinkLoads()
	roundSec := float64(a.sim.Engine.Now())
	if a.prevLinkBytes == nil {
		a.prevLinkBytes = make([]float64, len(loads))
	}
	if a.utilEWMA == nil {
		a.utilEWMA = make([]float64, len(loads))
	}
	delta := make([]LinkLoad, len(loads))
	for i, l := range loads {
		d := l.Bytes - a.prevLinkBytes[i]
		util := 0.0
		if roundSec > 0 {
			util = d / (a.sim.Net.Links[l.LinkID].Speed.BytesPerSec() * roundSec)
		}
		delta[i] = LinkLoad{LinkID: l.LinkID, Forward: l.Forward, Bytes: d, Util: util}
		a.utilEWMA[i] = utilEWMAAlpha*util + (1-utilEWMAAlpha)*a.utilEWMA[i]
		a.prevLinkBytes[i] = l.Bytes
	}
	a.lastDelta = delta
	a.lastRoundSec = roundSec
}
