package netsim

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Station is a FIFO multi-server queueing station (G/G/k) driven by a
// sim.Engine. It is the substrate for service tail-latency experiments
// such as the Catapult ranking study: arrivals queue for one of k servers,
// each job carries its own service demand.
type Station struct {
	Engine  *sim.Engine
	Servers int

	queue    []job
	busy     int
	lat      *metrics.Sample
	svc      *metrics.Sample
	qlen     metrics.TimeWeighted
	departed int
}

type job struct {
	arrived sim.Time
	service sim.Time
	done    func(wait, total sim.Time)
}

// NewStation returns a station with k servers on the given engine.
func NewStation(e *sim.Engine, k int) *Station {
	if k <= 0 {
		panic("netsim: station needs at least one server")
	}
	return &Station{Engine: e, Servers: k, lat: metrics.NewSample(1024), svc: metrics.NewSample(1024)}
}

// Submit enqueues a job with the given service demand. The optional done
// callback receives the waiting time and total sojourn time.
func (st *Station) Submit(service sim.Time, done func(wait, total sim.Time)) {
	j := job{arrived: st.Engine.Now(), service: service, done: done}
	if st.busy < st.Servers {
		st.start(j)
		return
	}
	st.queue = append(st.queue, j)
	st.qlen.Observe(float64(st.Engine.Now()), float64(len(st.queue)))
}

func (st *Station) start(j job) {
	st.busy++
	st.Engine.Schedule(j.service, func() {
		st.busy--
		now := st.Engine.Now()
		total := now - j.arrived
		wait := total - j.service
		st.lat.Add(float64(total))
		st.svc.Add(float64(j.service))
		st.departed++
		if j.done != nil {
			j.done(wait, total)
		}
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			st.qlen.Observe(float64(now), float64(len(st.queue)))
			st.start(next)
		}
	})
}

// Latency returns the sample of total sojourn times (seconds).
func (st *Station) Latency() *metrics.Sample { return st.lat }

// ServiceTimes returns the sample of service demands of departed jobs.
func (st *Station) ServiceTimes() *metrics.Sample { return st.svc }

// Departed returns the number of completed jobs.
func (st *Station) Departed() int { return st.departed }

// QueueLenMean returns the time-average queue length up to now.
func (st *Station) QueueLenMean() float64 {
	return st.qlen.MeanUntil(float64(st.Engine.Now()))
}
