// Package netsim is a flow-level datacenter network simulator. Flows are
// routed over an internal/topo topology, share directed link capacity
// according to max-min fairness (progressive filling, the standard
// flow-level abstraction of TCP-like sharing), and the simulator reports
// flow completion times and link utilization. A multi-server queueing
// station is also provided for service-latency (tail) experiments.
package netsim

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/topo"
)

// Flow is one bulk transfer between two hosts.
type Flow struct {
	ID    int
	Src   int
	Dst   int
	Bytes float64
	Path  topo.Path
	// Weight is the flow's share weight under weighted max-min fairness
	// (always positive; 1 is the uniform default). A weight-w flow on a
	// bottleneck receives w times the rate of a weight-1 flow.
	Weight float64
	// Class is the QoS class tag the flow was admitted under ("" =
	// best-effort). Purely attributional at this layer.
	Class string

	Start sim.Time
	End   sim.Time
	Done  bool

	remaining float64
	rate      float64 // current bytes/sec
	lastTouch sim.Time
}

// FCT returns the flow completion time in seconds, including path
// propagation delay; it returns 0 for unfinished flows.
func (f *Flow) FCT() float64 {
	if !f.Done {
		return 0
	}
	return float64(f.End - f.Start)
}

// dirLink identifies one direction of a full-duplex link.
type dirLink int

func dirLinkID(linkID int, forward bool) dirLink {
	if forward {
		return dirLink(linkID * 2)
	}
	return dirLink(linkID*2 + 1)
}

// Fairness selects the bandwidth-sharing model.
type Fairness int

const (
	// MaxMin is progressive-filling max-min fairness (default; models
	// TCP-like sharing at flow granularity).
	MaxMin Fairness = iota
	// Proportional is a single-pass heuristic: each flow gets the minimum
	// over its links of capacity divided by flow count. It under-allocates
	// relative to max-min and exists for the fairness ablation.
	Proportional
)

// Simulator runs flows over a topology.
type Simulator struct {
	Net      *topo.Network
	Engine   *sim.Engine
	Fairness Fairness
	// ECMPWidth bounds the ECMP path set considered per flow (default 8).
	ECMPWidth int

	flows     map[int]*Flow
	nextID    int
	doneFCT   *metrics.Sample
	doneBytes float64
	completeC *sim.Event
	linkBusy  []float64 // cumulative byte-seconds per directed link
	onDone    func(*Flow)
}

// NewSimulator returns a simulator over the given network with its own
// event engine.
func NewSimulator(net *topo.Network) *Simulator {
	return &Simulator{
		Net:       net,
		Engine:    sim.NewEngine(),
		ECMPWidth: 8,
		flows:     map[int]*Flow{},
		doneFCT:   metrics.NewSample(1024),
		linkBusy:  make([]float64, len(net.Links)*2),
	}
}

// OnFlowDone registers a callback invoked when any flow completes.
func (s *Simulator) OnFlowDone(fn func(*Flow)) { s.onDone = fn }

// StartFlow routes and injects a flow of the given size now. It returns the
// flow, or an error if no route exists.
func (s *Simulator) StartFlow(src, dst int, bytes float64) (*Flow, error) {
	return s.StartFlowSeeded(src, dst, bytes, s.nextID)
}

// StartFlowSeeded is StartFlow with an explicit ECMP seed: the seed (not
// the global flow ID) selects among the equal-cost paths. Callers that
// multiplex independent workloads over one long-lived simulator — the
// shared SQL fabric — give each workload its own seed sequence starting
// at zero, so a workload's routing is reproducible regardless of how
// many flows other workloads injected before it.
func (s *Simulator) StartFlowSeeded(src, dst int, bytes float64, seed int) (*Flow, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("netsim: flow size must be positive, got %v", bytes)
	}
	path, ok := s.Net.PickECMP(src, dst, seed, s.ECMPWidth)
	if !ok {
		return nil, fmt.Errorf("netsim: no route %d -> %d", src, dst)
	}
	return s.StartFlowRouted(src, dst, bytes, path, 1, "")
}

// StartFlowRouted injects a flow on an explicit path with an explicit
// scheduling weight and class — the control-plane entry point: the
// admission layer routes (or lets a Controller reroute) before
// injection, then injects here. weight <= 0 means 1. The path must be a
// valid src->dst walk over the simulator's links.
func (s *Simulator) StartFlowRouted(src, dst int, bytes float64, path topo.Path, weight float64, class string) (*Flow, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("netsim: flow size must be positive, got %v", bytes)
	}
	if !validPath(s.Net, path, src, dst) {
		return nil, fmt.Errorf("netsim: invalid path %d -> %d", src, dst)
	}
	if weight <= 0 {
		weight = 1
	}
	id := s.nextID
	s.nextID++
	f := &Flow{
		ID: id, Src: src, Dst: dst, Bytes: bytes, Path: path, Weight: weight, Class: class,
		Start: s.Engine.Now(), remaining: bytes, lastTouch: s.Engine.Now(),
	}
	s.flows[id] = f
	s.reallocate()
	return f, nil
}

// ScheduleFlow injects a flow after the given delay.
func (s *Simulator) ScheduleFlow(delay sim.Time, src, dst int, bytes float64) {
	s.Engine.Schedule(delay, func() {
		if _, err := s.StartFlow(src, dst, bytes); err != nil {
			panic(err)
		}
	})
}

// Run drives the engine until all flows complete.
func (s *Simulator) Run() { s.Engine.Run() }

// ResetClock rewinds the virtual clock to zero if the simulator is idle
// (no active flows, no pending events), reporting whether it did.
// Long-lived simulators that run self-contained episodes — the rounds of
// a shared-fabric Admission — reset between episodes so each replays
// with bit-identical float arithmetic. Cumulative link-byte counters are
// preserved; only the timebase rewinds, so time-windowed utilization
// readings must be taken against an externally tracked busy time.
func (s *Simulator) ResetClock() bool {
	if len(s.flows) > 0 || s.Engine.Pending() > 0 {
		return false
	}
	s.Engine.ResetClock()
	return true
}

// FCTs returns the sample of completed flow completion times (seconds).
func (s *Simulator) FCTs() *metrics.Sample { return s.doneFCT }

// BytesDelivered returns total bytes of completed flows.
func (s *Simulator) BytesDelivered() float64 { return s.doneBytes }

// ActiveFlows returns the number of in-flight flows.
func (s *Simulator) ActiveFlows() int { return len(s.flows) }

// LinkLoad reports one direction of a link: the bytes it carried and its
// utilization over [0, Now]. It is the per-link charging hook the
// distributed SQL engine reads to attribute shuffle traffic to fabric
// links.
type LinkLoad struct {
	LinkID  int
	Forward bool // A->B direction
	Bytes   float64
	Util    float64 // fraction of capacity used over [0, Now]
}

// LinkLoads returns the load of every directed link in (LinkID, direction)
// order. Utilization is 0 before any simulated time has elapsed.
func (s *Simulator) LinkLoads() []LinkLoad {
	now := float64(s.Engine.Now())
	out := make([]LinkLoad, len(s.linkBusy))
	for d, busy := range s.linkBusy {
		util := 0.0
		if now > 0 {
			util = busy / (s.Net.Links[d/2].Speed.BytesPerSec() * now)
		}
		out[d] = LinkLoad{LinkID: d / 2, Forward: d%2 == 0, Bytes: busy, Util: util}
	}
	return out
}

// MaxLinkUtilization returns the highest directed-link utilization over
// [0, Now] — the hot spot the shuffle placement experiments watch.
func (s *Simulator) MaxLinkUtilization() float64 {
	max := 0.0
	for _, l := range s.LinkLoads() {
		if l.Util > max {
			max = l.Util
		}
	}
	return max
}

// MeanLinkUtilization returns the average utilization across directed
// links over [0, Now], in [0, 1].
func (s *Simulator) MeanLinkUtilization() float64 {
	now := float64(s.Engine.Now())
	if now <= 0 || len(s.linkBusy) == 0 {
		return 0
	}
	total := 0.0
	for d, busy := range s.linkBusy {
		cap := s.Net.Links[d/2].Speed.BytesPerSec()
		total += busy / (cap * now)
	}
	return total / float64(len(s.linkBusy))
}

// retireThreshold is the residue below which a flow counts as complete.
// It is relative to the flow size: progressive filling accumulates rounding
// on the order of Bytes*eps, so an absolute cutoff would strand large flows
// with residues whose completion events are too small to advance the
// float64 clock.
func retireThreshold(f *Flow) float64 { return 1e-9 + 1e-9*f.Bytes }

// advanceProgress charges each active flow for bytes sent since its last
// touch, at its current rate.
func (s *Simulator) advanceProgress() {
	now := s.Engine.Now()
	for _, id := range s.sortedFlowIDs() {
		f := s.flows[id]
		dt := float64(now - f.lastTouch)
		if dt > 0 && f.rate > 0 {
			s.charge(f, f.rate*dt)
		}
		f.lastTouch = now
	}
}

// chargeExact charges every flow for exactly dt seconds at its current
// rate, independent of the clock. The completion event uses this so that
// the flow that defined the event's delay retires even when the delay is
// too small to move the float64 clock.
func (s *Simulator) chargeExact(dt float64) {
	now := s.Engine.Now()
	for _, id := range s.sortedFlowIDs() {
		f := s.flows[id]
		if f.rate > 0 {
			s.charge(f, f.rate*dt)
		}
		f.lastTouch = now
	}
}

func (s *Simulator) charge(f *Flow, sent float64) {
	if sent > f.remaining || f.remaining-sent <= retireThreshold(f) {
		sent = f.remaining
	}
	f.remaining -= sent
	s.chargeLinks(f, sent)
}

func (s *Simulator) chargeLinks(f *Flow, bytes float64) {
	for i, lid := range f.Path.LinkIDs {
		forward := s.Net.Links[lid].A == f.Path.NodeIDs[i]
		s.linkBusy[dirLinkID(lid, forward)] += bytes
	}
}

// retire finishes every flow whose residue is at or below its threshold,
// in flow-ID order so completion records are reproducible.
func (s *Simulator) retire() {
	for _, id := range s.sortedFlowIDs() {
		f := s.flows[id]
		if f.remaining <= retireThreshold(f) {
			s.finish(f)
			delete(s.flows, id)
		}
	}
}

// reallocate recomputes fair rates and schedules the next completion.
func (s *Simulator) reallocate() {
	s.advanceProgress()
	s.retire()
	if len(s.flows) == 0 {
		return
	}
	switch s.Fairness {
	case MaxMin:
		s.maxMinRates()
	case Proportional:
		s.proportionalRates()
	}
	// Schedule the earliest completion.
	if s.completeC != nil {
		s.Engine.Cancel(s.completeC)
		s.completeC = nil
	}
	best := sim.Time(-1)
	for _, f := range s.flows {
		if f.rate <= 0 {
			continue
		}
		t := sim.Time(f.remaining / f.rate)
		if best < 0 || t < best {
			best = t
		}
	}
	if best < 0 {
		panic("netsim: active flows but no positive rates (disconnected capacity?)")
	}
	dt := float64(best)
	s.completeC = s.Engine.Schedule(best, func() {
		s.completeC = nil
		// Charge analytically for the scheduled interval: rates are
		// unchanged since scheduling (any change would have cancelled this
		// event), and the clock delta may round to zero for tiny residues.
		s.chargeExact(dt)
		s.retire()
		s.reallocate()
	})
}

func (s *Simulator) finish(f *Flow) {
	f.Done = true
	f.End = s.Engine.Now() + sim.Time(f.Path.DelayNS(s.Net)*1e-9)
	s.doneFCT.Add(float64(f.End - f.Start))
	s.doneBytes += f.Bytes
	if s.onDone != nil {
		s.onDone(f)
	}
}
