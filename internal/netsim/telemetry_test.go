package netsim

import (
	"testing"

	"repro/internal/topo"
)

// recorder captures every RoundState a controller observes.
type recorder struct{ states []*RoundState }

func (r *recorder) Admit(st *RoundState) []Decision {
	r.states = append(r.states, st)
	return nil
}

// TestLoadTelemetryWindows: controllers see per-round delta loads and a
// utilization EWMA, not just lifetime totals — the PR 4 follow-on. The
// first round carries no windows; later rounds report exactly the
// previous round's traffic, and the EWMA accumulates round over round.
func TestLoadTelemetryWindows(t *testing.T) {
	net := topo.SingleSwitch(4, topo.Gen10)
	rec := &recorder{}
	a := NewAdmission(NewSimulator(net))
	a.SetController(rec)
	p := a.Join(nil)
	defer p.Leave()

	for _, bytes := range []float64{1e6, 2e6, 1e6} {
		if _, _, err := p.Submit([]FlowReq{{Src: 0, Dst: 1, Bytes: bytes}}); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.states) != 3 {
		t.Fatalf("rounds observed: %d", len(rec.states))
	}

	st0 := rec.states[0]
	if st0.DeltaLoads != nil || st0.UtilEWMA != nil || st0.LastRoundSeconds != 0 {
		t.Fatalf("first round must carry no telemetry windows: %+v", st0)
	}

	sumDelta := func(st *RoundState) float64 {
		total := 0.0
		for _, l := range st.DeltaLoads {
			total += l.Bytes
		}
		return total
	}
	// Round 1 sees round 0's traffic: 1e6 over the two hops of the
	// host0 -> switch -> host1 path.
	st1 := rec.states[1]
	if got := sumDelta(st1); got != 2e6 {
		t.Fatalf("round 1 delta bytes %.0f, want 2e6", got)
	}
	if st1.LastRoundSeconds <= 0 {
		t.Fatalf("round 1 must report the previous makespan: %v", st1.LastRoundSeconds)
	}
	// Round 2's delta is round 1's traffic alone — not the cumulative
	// 3e6 per hop that Loads reports.
	st2 := rec.states[2]
	if got := sumDelta(st2); got != 4e6 {
		t.Fatalf("round 2 delta bytes %.0f, want 4e6 (per-round, not cumulative)", got)
	}
	cum := 0.0
	for _, l := range st2.Loads {
		cum += l.Bytes
	}
	if cum != 6e6 {
		t.Fatalf("cumulative loads %.0f, want 6e6", cum)
	}

	// The EWMA accumulates on the used directions (a lone flow saturates
	// its path, so per-round utilization is 1: EWMA goes 0.5 then 0.75)
	// and stays zero on never-used ones.
	usedMore, unusedZero := 0, true
	for i := range st2.UtilEWMA {
		if st1.DeltaLoads[i].Bytes > 0 {
			if !(st2.UtilEWMA[i] > st1.UtilEWMA[i] && st2.UtilEWMA[i] <= 1) {
				t.Fatalf("dir %d: EWMA must rise under repeated load: %v -> %v", i, st1.UtilEWMA[i], st2.UtilEWMA[i])
			}
			usedMore++
		} else if st2.UtilEWMA[i] != 0 {
			unusedZero = false
		}
	}
	if usedMore != 2 || !unusedZero {
		t.Fatalf("EWMA shape wrong: %d used dirs, unused zero=%v", usedMore, unusedZero)
	}
}
