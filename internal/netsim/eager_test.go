package netsim

import (
	"sync"
	"testing"
	"time"
)

// TestEagerSoloReplaysBulk: a lone party's eager chunk rounds are
// bit-identical to the same submissions offered bulk-synchronously —
// membership is the same either way, so the sub-round machinery must not
// perturb the arithmetic.
func TestEagerSoloReplaysBulk(t *testing.T) {
	reqs := [][]FlowReq{
		{{Src: 0, Dst: 1, Bytes: 3e6}, {Src: 2, Dst: 1, Bytes: 1e6}},
		{{Src: 1, Dst: 0, Bytes: 2e6}},
		{{Src: 3, Dst: 2, Bytes: 5e6}},
	}
	run := func(eager bool) []float64 {
		a := NewAdmission(admissionSim())
		p := a.Join(nil)
		defer p.Leave()
		out := make([]float64, len(reqs))
		for i, r := range reqs {
			var err error
			if eager {
				out[i], _, err = p.SubmitEager(r)
			} else {
				out[i], _, err = p.Submit(r)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	bulk, eager := run(false), run(true)
	for i := range bulk {
		if bulk[i] != eager[i] {
			t.Fatalf("chunk %d: eager %v != bulk %v", i, eager[i], bulk[i])
		}
	}
}

// TestEagerDoesNotWaitForComputingParty: an eager submission runs its
// sub-round immediately even though another joined party has nothing
// pending — the whole point of pipelined chunks. A bulk submission in
// the same situation parks at the barrier.
func TestEagerDoesNotWaitForComputingParty(t *testing.T) {
	a := NewAdmission(admissionSim())
	pA := a.Join(nil)
	pB := a.Join(nil) // "computing": joined, never pending during A's chunks
	done := make(chan float64, 1)
	go func() {
		sec, _, err := pA.SubmitEager([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}})
		if err != nil {
			t.Error(err)
		}
		done <- sec
	}()
	select {
	case sec := <-done:
		if sec <= 0 {
			t.Fatalf("sec=%v", sec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eager sub-round waited for a computing party")
	}
	st := a.Stats()
	if st.Rounds != 1 || st.EagerRounds != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if ps := pA.Stats(); ps.SubRounds != 1 {
		t.Fatalf("party stats: %+v", ps)
	}
	pA.Leave()
	pB.Leave()
}

// TestEagerCarriesParkedBulkParty: a bulk-synchronous submission parked
// at the barrier is admitted into the next eager sub-round instead of
// starving behind the pipelined party's chunk stream.
func TestEagerCarriesParkedBulkParty(t *testing.T) {
	a := NewAdmission(admissionSim())
	pA := a.Join(nil)
	pB := a.Join(nil)
	bulkDone := make(chan float64, 1)
	go func() {
		sec, _, err := pB.Submit([]FlowReq{{Src: 2, Dst: 3, Bytes: 1e6}})
		if err != nil {
			t.Error(err)
		}
		bulkDone <- sec
	}()
	select {
	case <-bulkDone:
		t.Fatal("bulk round ran while a party had nothing pending")
	case <-time.After(100 * time.Millisecond):
	}
	if sec, _, err := pA.SubmitEager([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}}); err != nil || sec <= 0 {
		t.Fatalf("eager: sec=%v err=%v", sec, err)
	}
	select {
	case sec := <-bulkDone:
		if sec <= 0 {
			t.Fatalf("carried bulk submission: sec=%v", sec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eager sub-round did not carry the parked bulk submission")
	}
	st := a.Stats()
	// Every party had something pending when the round fired, so it counts
	// as a full round, not an eager one — but A's submission was still a
	// pipelined sub-round from its own perspective.
	if st.Rounds != 1 || st.EagerRounds != 0 || st.PeakParties != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if ps := pB.Stats(); ps.SubRounds != 0 || ps.RoundsJoined != 1 {
		t.Fatalf("bulk party stats: %+v", ps)
	}
	if ps := pA.Stats(); ps.SubRounds != 1 {
		t.Fatalf("eager party stats: %+v", ps)
	}
	pA.Leave()
	pB.Leave()
}

// TestEagerRespectsExpectFloor: an eager submission still honours the
// Expect floor — the sub-round runs only once enough parties joined.
func TestEagerRespectsExpectFloor(t *testing.T) {
	a := NewAdmission(admissionSim())
	a.Expect(2)
	p := a.Join(nil)
	done := make(chan float64, 1)
	go func() {
		sec, _, err := p.SubmitEager([]FlowReq{{Src: 0, Dst: 1, Bytes: 1e6}})
		if err != nil {
			t.Error(err)
		}
		done <- sec
	}()
	select {
	case <-done:
		t.Fatal("eager sub-round ran below the Expect floor")
	case <-time.After(100 * time.Millisecond):
	}
	p2 := a.Join(nil) // floor met; the newcomer needs nothing pending
	select {
	case sec := <-done:
		if sec <= 0 {
			t.Fatalf("sec=%v", sec)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join did not release the eager floor")
	}
	p.Leave()
	p2.Leave()
}

// TestEagerConcurrentChunkStreams: two parties each pipeline a stream of
// chunks concurrently; both complete every chunk (no deadlock, no lost
// wakeups) and the fabric counts every submission.
func TestEagerConcurrentChunkStreams(t *testing.T) {
	a := NewAdmission(admissionSim())
	const chunks = 8
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := a.Join(nil)
			defer p.Leave()
			for k := 0; k < chunks; k++ {
				if sec, _, err := p.SubmitEager([]FlowReq{{Src: i * 2, Dst: 1, Bytes: 1e5}}); err != nil || sec <= 0 {
					t.Errorf("party %d chunk %d: sec=%v err=%v", i, k, sec, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := a.Stats()
	if st.Rounds < chunks || st.Rounds > 2*chunks {
		t.Fatalf("rounds=%d want within [%d,%d]", st.Rounds, chunks, 2*chunks)
	}
}
