package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual simulation time in seconds.
type Time float64

// Millisecond, Microsecond and friends express common sub-second durations
// as Time values for readability at call sites.
const (
	Nanosecond  Time = 1e-9
	Microsecond Time = 1e-6
	Millisecond Time = 1e-3
	Second      Time = 1
)

// Event is a scheduled callback. Fire runs at the event's timestamp with
// the engine's clock already advanced.
type Event struct {
	At       Time
	Priority int // tie-break: lower priority fires first at equal time
	Fire     func()

	seq   uint64
	index int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a sequential discrete-event simulation engine. Events fire in
// timestamp order; ties break on Priority then on scheduling order, so runs
// are fully deterministic.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run after delay from the current time and returns
// the event so it can be cancelled. A negative delay panics: the calendar
// never travels backwards.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	return e.ScheduleP(delay, 0, fn)
}

// ScheduleP is Schedule with an explicit tie-break priority.
func (e *Engine) ScheduleP(delay Time, priority int, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	ev := &Event{At: e.now + delay, Priority: priority, Fire: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// At enqueues fn to run at absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", t, e.now))
	}
	return e.Schedule(t-e.now, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.index >= len(e.queue) || e.queue[ev.index] != ev {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// ResetClock rewinds the clock to zero. It is only legal while the
// calendar is empty (no pending events reference the old timebase) and
// exists so long-lived simulations can run successive self-contained
// episodes with bit-identical float arithmetic: replaying the same
// events from t=0 accumulates rounding identically every time, which
// absolute offsets from earlier episodes would perturb.
func (e *Engine) ResetClock() {
	if len(e.queue) > 0 {
		panic("sim: ResetClock with pending events")
	}
	e.now = 0
}

// Run executes events until the calendar is empty or Halt is called.
func (e *Engine) Run() {
	e.RunUntil(Time(maxFloat))
}

const maxFloat = 1.797693134862315708145274237317043567981e+308

// RunUntil executes events with timestamps <= deadline. The clock is left
// at the last fired event (or untouched if none fired), matching the usual
// DES convention that time advances only through events.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		next := e.queue[0]
		if next.At > deadline {
			return
		}
		heap.Pop(&e.queue)
		e.now = next.At
		e.fired++
		next.Fire()
	}
}

// Step fires exactly one event if any is pending and reports whether it did.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.At
	e.fired++
	next.Fire()
	return true
}
