package sim

// ArrivalProcess generates successive inter-arrival gaps. Implementations
// must be deterministic given their RNG seed.
type ArrivalProcess interface {
	// NextGap returns the time until the next arrival.
	NextGap() Time
}

// Poisson is a memoryless arrival process with constant rate (arrivals per
// second).
type Poisson struct {
	Rate float64
	rng  *RNG
}

// NewPoisson returns a Poisson process with the given rate.
func NewPoisson(rng *RNG, rate float64) *Poisson {
	if rate <= 0 {
		panic("sim: Poisson rate must be positive")
	}
	return &Poisson{Rate: rate, rng: rng}
}

// NextGap returns an exponentially distributed gap.
func (p *Poisson) NextGap() Time { return Time(p.rng.Exp(p.Rate)) }

// MMPP is a two-state Markov-modulated Poisson process used to model bursty
// Big Data ingest: a quiet state with BaseRate and a burst state with
// BurstRate, switching with exponential holding times.
type MMPP struct {
	BaseRate  float64
	BurstRate float64
	// HoldBase and HoldBurst are the mean holding times of each state.
	HoldBase  Time
	HoldBurst Time

	rng       *RNG
	inBurst   bool
	stateLeft Time // time remaining in the current state
}

// NewMMPP returns a two-state MMPP starting in the quiet state.
func NewMMPP(rng *RNG, baseRate, burstRate float64, holdBase, holdBurst Time) *MMPP {
	if baseRate <= 0 || burstRate <= 0 {
		panic("sim: MMPP rates must be positive")
	}
	m := &MMPP{BaseRate: baseRate, BurstRate: burstRate, HoldBase: holdBase, HoldBurst: holdBurst, rng: rng}
	m.stateLeft = Time(rng.Exp(1 / float64(holdBase)))
	return m
}

// InBurst reports whether the process is currently in the burst state.
func (m *MMPP) InBurst() bool { return m.inBurst }

// NextGap returns the time to the next arrival, advancing state transitions
// that happen in between.
func (m *MMPP) NextGap() Time {
	var total Time
	for {
		rate := m.BaseRate
		if m.inBurst {
			rate = m.BurstRate
		}
		gap := Time(m.rng.Exp(rate))
		if gap <= m.stateLeft {
			m.stateLeft -= gap
			return total + gap
		}
		// The state flips before the arrival lands; consume the remaining
		// state time and resample in the new state.
		total += m.stateLeft
		m.inBurst = !m.inBurst
		hold := m.HoldBase
		if m.inBurst {
			hold = m.HoldBurst
		}
		m.stateLeft = Time(m.rng.Exp(1 / float64(hold)))
	}
}

// OpenLoop drives an open-loop arrival stream into the engine: every
// arrival schedules handle(i) at its arrival time, for count arrivals.
func OpenLoop(e *Engine, ap ArrivalProcess, count int, handle func(i int)) {
	t := Time(0)
	for i := 0; i < count; i++ {
		t += ap.NextGap()
		i := i
		e.At(e.Now()+t, func() { handle(i) })
	}
}
