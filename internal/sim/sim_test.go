package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) visited only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(99)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal var = %v, want ~4", variance)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(1.5, 2.5); v < 1.5 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, 1.0, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
	// Item 0 under s=1 over n=1000 should take roughly 1/H(1000) ~= 13% of mass.
	frac := float64(counts[0]) / 100000
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("Zipf head mass = %v, want ~0.13", frac)
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, 0, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("uniform Zipf bucket %d count %d out of tolerance", i, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		sorted := append([]int(nil), p...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(123)
	counts := [3]int{}
	for i := 0; i < 90000; i++ {
		counts[r.Choice([]float64{1, 2, 6})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakBySeq(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO tie-break violated: %v", got)
		}
	}
}

func TestEnginePriorityTieBreak(t *testing.T) {
	e := NewEngine()
	var got []string
	e.ScheduleP(1, 5, func() { got = append(got, "low") })
	e.ScheduleP(1, 1, func() { got = append(got, "high") })
	e.Run()
	if got[0] != "high" {
		t.Fatalf("priority tie-break violated: %v", got)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// double-cancel is a no-op
	e.Cancel(ev)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("RunUntil(5) fired %d events, want 5", count)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Fatalf("Run after RunUntil fired %d total, want 10", count)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Halt did not stop run loop: fired %d", count)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(1, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("nested scheduling depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty calendar returned true")
	}
}

func TestPoissonMeanGap(t *testing.T) {
	p := NewPoisson(NewRNG(8), 100)
	sum := Time(0)
	n := 100000
	for i := 0; i < n; i++ {
		sum += p.NextGap()
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-0.01) > 0.0005 {
		t.Fatalf("Poisson(100) mean gap = %v, want ~0.01", mean)
	}
}

func TestMMPPBurstsIncreaseRate(t *testing.T) {
	m := NewMMPP(NewRNG(8), 10, 1000, 1, 1)
	// Average rate should land strictly between base and burst rates.
	sum := Time(0)
	n := 200000
	for i := 0; i < n; i++ {
		sum += m.NextGap()
	}
	rate := float64(n) / float64(sum)
	if rate <= 10 || rate >= 1000 {
		t.Fatalf("MMPP effective rate %v outside (10, 1000)", rate)
	}
}

func TestOpenLoopSchedulesAll(t *testing.T) {
	e := NewEngine()
	p := NewPoisson(NewRNG(4), 1000)
	seen := 0
	OpenLoop(e, p, 500, func(i int) { seen++ })
	e.Run()
	if seen != 500 {
		t.Fatalf("OpenLoop delivered %d arrivals, want 500", seen)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	a := NewRNG(42)
	b := a.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream correlated: %d matches", same)
	}
}
