// Package sim provides a deterministic discrete-event simulation kernel:
// a seeded random number generator with the statistical distributions used
// across the RETHINK big toolkit, an event calendar with a virtual clock,
// and arrival processes. Every simulator in this repository is built on top
// of this package so that all experiments are reproducible bit-for-bit from
// a seed.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded via SplitMix64. It is not safe for concurrent use;
// create one RNG per goroutine (see Split).
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed. Two generators
// built from the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent by reseeding through SplitMix64.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Lognormal returns a value whose logarithm is normally distributed with
// parameters mu and sigma.
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with the given minimum and
// shape alpha. Heavy-tailed service times in the tail-latency experiments
// use alpha slightly above 2.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf(s, n) distribution over [0, n). Values near 0
// are the most popular. It uses precomputed cumulative weights, so
// construction is O(n) and sampling is O(log n).
type Zipf struct {
	cum []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s (s >= 0;
// s == 0 degenerates to uniform).
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// N returns the number of items in the sampler's support.
func (z *Zipf) N() int { return len(z.cum) }

// Next returns the next sample in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Choice returns a pseudo-random element index weighted by w. Weights must
// be non-negative with a positive sum.
func (r *RNG) Choice(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 {
			panic("sim: negative weight")
		}
		total += x
	}
	if total <= 0 {
		panic("sim: Choice with zero total weight")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}
