package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/survey"
)

// Recommendation is one of the twelve Section V.B actions, scored against
// the evidence base and the technology model.
type Recommendation struct {
	ID     int
	Title  string
	Action string
	// Findings lists the Section V.A findings (1–4) it addresses.
	Findings []int
	// Technologies names the TechCatalog entries it depends on.
	Technologies []string
	// Impact and Feasibility are in (0, 1], computed by BuildRoadmap.
	Impact, Feasibility float64
	// Priority = Impact × Feasibility.
	Priority float64
	Horizon  Horizon
}

// baseRecommendations returns the twelve actions verbatim from Section
// V.B, with their finding and technology linkage.
func baseRecommendations() []Recommendation {
	return []Recommendation{
		{ID: 1, Title: "Promote adoption of current and upcoming networking standards",
			Action:       "Accelerate 10/40GbE adoption with low-power European components; connect vendors to end users and operators.",
			Findings:     []int{2, 4},
			Technologies: []string{"10/40GbE adoption", "100GbE fabrics"}},
		{ID: 2, Title: "Prepare for next-generation hardware; exploit HPC/Big-Data convergence",
			Action:       "Encourage dual-purpose HPC/Big-Data products differentiated in software to widen markets and cut product risk.",
			Findings:     []int{3, 4},
			Technologies: []string{"GPGPU analytics", "100GbE fabrics", "Non-volatile memory (SCM)"}},
		{ID: 3, Title: "Anticipate data-center designs for 400GbE and beyond",
			Action:       "Invest in photonics-on-silicon integration and novel interconnect designs required at 400Gb operation.",
			Findings:     []int{4},
			Technologies: []string{"400GbE + silicon photonics", "Composable/disaggregated DC"}},
		{ID: 4, Title: "Reduce risk and cost of using accelerators",
			Action:       "Collaborative projects demonstrating ≥10x throughput per node on real analytics applications.",
			Findings:     []int{1, 2},
			Technologies: []string{"FPGA acceleration", "GPGPU analytics", "Accelerated building blocks"}},
		{ID: 5, Title: "Encourage system co-design for new technologies",
			Action:       "Bring end users, application providers, integrators and technology providers together around integrated hardware-software solutions.",
			Findings:     []int{3},
			Technologies: []string{"SiP/chiplet integration", "Non-volatile memory (SCM)"}},
		{ID: 6, Title: "Improve programmability of FPGAs",
			Action:       "Fund tools, abstractions and high-level languages for FPGAs; encourage a new European entrant into the FPGA industry.",
			Findings:     []int{2, 4},
			Technologies: []string{"FPGA acceleration"}},
		{ID: 7, Title: "Pioneer markets for neuromorphic computing",
			Action:       "Collaborative research across the value chain demonstrating real value from neuromorphic computing.",
			Findings:     []int{3},
			Technologies: []string{"Neuromorphic computing"}},
		{ID: 8, Title: "Create a sustainable business environment including training data",
			Action:   "Open anonymized training data; encourage sharing inside EC projects; networks-of-excellence between hardware and Big Data companies.",
			Findings: []int{1, 3}},
		{ID: 9, Title: "Establish standard benchmarks",
			Action:       "Benchmarks comparing current and novel architectures on Big Data applications, enabling side-by-side assessment.",
			Findings:     []int{1, 2},
			Technologies: []string{"Accelerated building blocks"}},
		{ID: 10, Title: "Identify and build accelerated building blocks",
			Action:       "Replace often-required functional blocks of processing frameworks with (partially) hardware-accelerated implementations.",
			Findings:     []int{2},
			Technologies: []string{"Accelerated building blocks", "FPGA acceleration", "ASIC/TPU-class accelerators"}},
		{ID: 11, Title: "Investigate use of heterogeneous resources",
			Action:       "Dynamic scheduling and resource allocation strategies for heterogeneous edge/cloud platforms.",
			Findings:     []int{2, 3},
			Technologies: []string{"GPGPU analytics", "FPGA acceleration", "Composable/disaggregated DC"}},
		{ID: 12, Title: "Continue to ask the question",
			Action:   "Keep surveying whether hardware/networking optimizations can solve industry's problems as Big Data value matures into bottlenecks.",
			Findings: []int{1}},
	}
}

// Roadmap is the scored, prioritized output.
type Roadmap struct {
	Findings        []survey.Finding
	Recommendations []Recommendation // sorted by descending priority
	// BaseYear anchors horizon phases (the paper's 2016).
	BaseYear int
}

// BuildRoadmap derives findings from the corpus and scores every
// recommendation.
//
// Impact aggregates the support of the findings a recommendation
// addresses (the stronger the evidence of the problem, the more impactful
// fixing it) weighted by the relevance of the technologies it unlocks.
// Feasibility reflects technology maturity (TRL and projected adoption
// within the roadmap's ten-year window). Horizon assignment follows the
// slowest technology's 10%-adoption year.
func BuildRoadmap(c *survey.Corpus, baseYear int) (*Roadmap, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil corpus")
	}
	findings := survey.DeriveFindings(c)
	supportByID := map[int]float64{}
	for _, f := range findings {
		supportByID[f.ID] = f.Support
	}
	techs := TechByName()
	recs := baseRecommendations()
	for i := range recs {
		r := &recs[i]
		// Impact: mean finding support × mean technology relevance.
		fs := 0.0
		for _, fid := range r.Findings {
			fs += supportByID[fid]
		}
		if len(r.Findings) > 0 {
			fs /= float64(len(r.Findings))
		} else {
			fs = 0.5
		}
		rel := 1.0
		if len(r.Technologies) > 0 {
			rel = 0.0
			for _, tn := range r.Technologies {
				t, ok := techs[tn]
				if !ok {
					return nil, fmt.Errorf("core: recommendation %d references unknown technology %q", r.ID, tn)
				}
				rel += t.Relevance
			}
			rel /= float64(len(r.Technologies))
		}
		r.Impact = fs * rel

		// Feasibility: mean of TRL/9 and adoption reachability.
		if len(r.Technologies) == 0 {
			r.Feasibility = 0.9 // policy actions need no new silicon
			r.Horizon = NearTerm
		} else {
			f := 0.0
			worstStart := baseYear
			for _, tn := range r.Technologies {
				t := techs[tn]
				trlScore := float64(t.TRL) / 9
				y := t.YearToAdoption(0.10)
				reach := 0.0
				if y > 0 && y <= baseYear+10 {
					reach = 1 - float64(y-baseYear)/10
					if reach < 0 {
						reach = 0
					}
					if reach > 1 {
						reach = 1
					}
				}
				f += (trlScore + reach) / 2
				if y > worstStart {
					worstStart = y
				}
			}
			r.Feasibility = f / float64(len(r.Technologies))
			switch {
			case worstStart <= baseYear+2:
				r.Horizon = NearTerm
			case worstStart <= baseYear+5:
				r.Horizon = MidTerm
			default:
				r.Horizon = LongTerm
			}
		}
		r.Priority = r.Impact * r.Feasibility
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Priority != recs[j].Priority {
			return recs[i].Priority > recs[j].Priority
		}
		return recs[i].ID < recs[j].ID
	})
	return &Roadmap{Findings: findings, Recommendations: recs, BaseYear: baseYear}, nil
}

// Table renders the prioritized recommendation list.
func (r *Roadmap) Table() *metrics.Table {
	t := metrics.NewTable("RETHINK big recommendations, prioritized",
		"rank", "id", "title", "impact", "feasibility", "priority", "horizon")
	for i, rec := range r.Recommendations {
		t.AddRow(
			fmt.Sprint(i+1), fmt.Sprint(rec.ID), rec.Title,
			fmt.Sprintf("%.2f", rec.Impact),
			fmt.Sprintf("%.2f", rec.Feasibility),
			fmt.Sprintf("%.2f", rec.Priority),
			rec.Horizon.String(),
		)
	}
	return t
}

// Render produces the full text roadmap document: findings,
// recommendations and the adoption timeline.
func (r *Roadmap) Render() string {
	var b strings.Builder
	b.WriteString("EUROPEAN ROADMAP FOR HARDWARE AND NETWORKING OPTIMIZATIONS FOR BIG DATA\n")
	b.WriteString(strings.Repeat("=", 72) + "\n\n")
	b.WriteString(Table1().Render())
	b.WriteString("\n")
	b.WriteString(Figure1().Render())
	b.WriteString("\nKEY FINDINGS\n------------\n")
	for _, f := range r.Findings {
		status := "SUPPORTED"
		if !f.Holds {
			status = "NOT SUPPORTED"
		}
		fmt.Fprintf(&b, "(%d) %s\n    evidence: %s [%s]\n", f.ID, f.Statement, f.Detail, status)
	}
	b.WriteString("\n")
	b.WriteString(r.Table().Render())
	b.WriteString("\n")
	b.WriteString(AdoptionTimeline(r.BaseYear-1, r.BaseYear+9).Render())
	return b.String()
}
