package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/survey"
)

func TestConsortiumMatchesTable1(t *testing.T) {
	ps := Consortium()
	if len(ps) != 9 {
		t.Fatalf("partners = %d, want 9 (Table 1)", len(ps))
	}
	shorts := map[string]bool{}
	for _, p := range ps {
		shorts[p.Short] = true
		if p.Name == "" || p.Expertise == "" {
			t.Fatalf("incomplete partner %+v", p)
		}
	}
	for _, want := range []string{"BSC", "TUB", "EPFL", "CWI", "UoM", "UPM", "ARM", "IMR", "THALES"} {
		if !shorts[want] {
			t.Fatalf("missing partner %s", want)
		}
	}
	if Consortium()[0].Short != "BSC" {
		t.Fatal("BSC led the project and heads Table 1")
	}
}

func TestTable1Renders(t *testing.T) {
	tab := Table1()
	if tab.NumRows() != 9 {
		t.Fatalf("table rows = %d", tab.NumRows())
	}
	text := tab.Render()
	if !strings.Contains(text, "Barcelona Supercomputing Center") {
		t.Fatal("missing BSC row")
	}
}

func TestLandscapeCoversEveryTopicOnce(t *testing.T) {
	topics := []Topic{BigDataHardware, BigDataNetworking, BigDataApplications,
		HPC, IoTDevices, TelecomStandards, GeneralCompute}
	for _, topic := range topics {
		owner, ok := OwnerOf(topic)
		if !ok {
			t.Fatalf("topic %v has no owner", topic)
		}
		// Count owners to detect overlaps (the paper's point is clean
		// separation of scope).
		n := 0
		for _, ini := range Landscape() {
			for _, c := range ini.Covers {
				if c == topic {
					n++
				}
			}
		}
		if n != 1 {
			t.Fatalf("topic %v covered by %d initiatives (owner %s)", topic, n, owner.Name)
		}
	}
}

func TestRethinkBigScope(t *testing.T) {
	for _, topic := range []Topic{BigDataHardware, BigDataNetworking} {
		owner, _ := OwnerOf(topic)
		if owner.Name != "RETHINK big" {
			t.Fatalf("topic %v owned by %s, want RETHINK big", topic, owner.Name)
		}
	}
	owner, _ := OwnerOf(HPC)
	if owner.Name != "ETP4HPC" {
		t.Fatalf("HPC owned by %s", owner.Name)
	}
}

func TestBassAdoptionShape(t *testing.T) {
	tech := Technology{Name: "x", IntroYear: 2016, BassP: 0.03, BassQ: 0.4}
	if tech.Adoption(2015) != 0 || tech.Adoption(2016) != 0 {
		t.Fatal("no adoption before/at introduction")
	}
	prev := 0.0
	for y := 2017; y <= 2060; y++ {
		a := tech.Adoption(y)
		if a < prev-1e-12 {
			t.Fatalf("adoption not monotone at %d: %v < %v", y, a, prev)
		}
		if a < 0 || a > 1 {
			t.Fatalf("adoption out of [0,1]: %v", a)
		}
		prev = a
	}
	if prev < 0.95 {
		t.Fatalf("adoption should approach 1 by 2060, got %v", prev)
	}
}

func TestBassAdoptionProperty(t *testing.T) {
	f := func(p8, q8 uint8) bool {
		p := 0.005 + float64(p8%60)/1000 // 0.005..0.065
		q := 0.25 + float64(q8%25)/100   // 0.25..0.50
		tech := Technology{IntroYear: 2016, BassP: p, BassQ: q}
		prev := 0.0
		for y := 2016; y <= 2040; y++ {
			a := tech.Adoption(y)
			if a < prev-1e-12 || a < 0 || a > 1 {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYearToAdoptionOrdering(t *testing.T) {
	techs := TechByName()
	mature := techs["10/40GbE adoption"]
	disruptive := techs["Neuromorphic computing"]
	my := mature.YearToAdoption(0.5)
	dy := disruptive.YearToAdoption(0.5)
	if my == 0 || dy == 0 {
		t.Fatalf("adoption years not found: %d, %d", my, dy)
	}
	if my >= dy {
		t.Fatalf("mature tech (%d) must reach 50%% before neuromorphic (%d)", my, dy)
	}
}

func TestCatalogComplete(t *testing.T) {
	for _, tech := range TechCatalog() {
		if tech.TRL < 1 || tech.TRL > 9 {
			t.Fatalf("%s: TRL %d", tech.Name, tech.TRL)
		}
		if tech.BassP <= 0 || tech.BassQ <= 0 || tech.Relevance <= 0 || tech.Relevance > 1 {
			t.Fatalf("%s: bad parameters %+v", tech.Name, tech)
		}
	}
}

func buildRoadmap(t *testing.T) *Roadmap {
	t.Helper()
	c, err := survey.Synthesize(survey.DefaultSpec(2016))
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildRoadmap(c, 2016)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoadmapHasTwelveRecommendations(t *testing.T) {
	r := buildRoadmap(t)
	if len(r.Recommendations) != 12 {
		t.Fatalf("recommendations = %d, want 12", len(r.Recommendations))
	}
	seen := map[int]bool{}
	for _, rec := range r.Recommendations {
		if rec.ID < 1 || rec.ID > 12 || seen[rec.ID] {
			t.Fatalf("bad/duplicate recommendation ID %d", rec.ID)
		}
		seen[rec.ID] = true
		if rec.Impact <= 0 || rec.Impact > 1 || rec.Feasibility <= 0 || rec.Feasibility > 1 {
			t.Fatalf("rec %d scores out of range: %+v", rec.ID, rec)
		}
		if rec.Priority != rec.Impact*rec.Feasibility {
			t.Fatalf("rec %d priority mismatch", rec.ID)
		}
	}
}

func TestRoadmapSortedByPriority(t *testing.T) {
	r := buildRoadmap(t)
	for i := 1; i < len(r.Recommendations); i++ {
		if r.Recommendations[i].Priority > r.Recommendations[i-1].Priority {
			t.Fatal("recommendations not sorted by priority")
		}
	}
}

func TestHorizonAssignment(t *testing.T) {
	r := buildRoadmap(t)
	byID := map[int]Recommendation{}
	for _, rec := range r.Recommendations {
		byID[rec.ID] = rec
	}
	// Networking standards (mature 10/40GbE) must be near-term; the
	// neuromorphic market (TRL 3, intro 2021) must be long-term.
	if byID[1].Horizon != NearTerm {
		t.Fatalf("rec 1 horizon = %v, want near-term", byID[1].Horizon)
	}
	if byID[7].Horizon != LongTerm {
		t.Fatalf("rec 7 horizon = %v, want long-term", byID[7].Horizon)
	}
	// Accelerator de-risking beats neuromorphic pioneering in priority:
	// stronger evidence (findings 1+2) and more mature technology.
	if byID[4].Priority <= byID[7].Priority {
		t.Fatalf("rec 4 (%v) should outrank rec 7 (%v)", byID[4].Priority, byID[7].Priority)
	}
}

func TestRoadmapRenderComplete(t *testing.T) {
	r := buildRoadmap(t)
	text := r.Render()
	for _, want := range []string{
		"Table 1", "Figure 1", "KEY FINDINGS",
		"(1) Industry is still focused",
		"prioritized", "Bass diffusion",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	// Every recommendation title appears.
	for _, rec := range r.Recommendations {
		if !strings.Contains(text, rec.Title) {
			t.Fatalf("render missing recommendation %d: %s", rec.ID, rec.Title)
		}
	}
}

func TestBuildRoadmapValidation(t *testing.T) {
	if _, err := BuildRoadmap(nil, 2016); err == nil {
		t.Fatal("nil corpus must error")
	}
}

func TestRoadmapDeterministic(t *testing.T) {
	a := buildRoadmap(t)
	b := buildRoadmap(t)
	for i := range a.Recommendations {
		if a.Recommendations[i].ID != b.Recommendations[i].ID ||
			a.Recommendations[i].Priority != b.Recommendations[i].Priority {
			t.Fatal("roadmap nondeterministic")
		}
	}
}

func TestAdoptionTimelineFigure(t *testing.T) {
	fig := AdoptionTimeline(2015, 2025)
	if len(fig.Series) != len(TechCatalog()) {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(TechCatalog()))
	}
	for _, s := range fig.Series {
		if s.Len() != 11 {
			t.Fatalf("series %s has %d points, want 11", s.Name, s.Len())
		}
	}
}
