package core

import (
	"fmt"

	"repro/internal/survey"
)

// Recommendation 12 is itself a prediction: "as more companies learn how
// to extract value from Big Data ... we expect companies to run into more
// and more undesirable performance bottlenecks that will require optimized
// hardware." This file makes the prediction executable: the survey
// calibration is projected forward with analytics adoption (a Bass curve
// for Big-Data production maturity), awareness of hardware bottlenecks
// rising with it, and the findings re-derived year by year until
// Finding 1 — "industry does not see hardware problems" — inverts.

// maturityCurve is the Bass diffusion of *production* Big-Data analytics
// deployments (the precondition for feeling hardware bottlenecks). 2016
// sits early on this curve, matching the paper's "industry is not yet
// mature enough".
var maturityCurve = Technology{
	Name: "Big-Data production maturity", IntroYear: 2013,
	BassP: 0.03, BassQ: 0.45, Relevance: 1,
}

// ProjectedRates returns the survey calibration shifted to the given
// year: bottleneck awareness and accelerator-ROI conviction rise with
// maturity; pure value-focus recedes.
func ProjectedRates(year int) survey.CalibratedRates {
	r := survey.DefaultRates()
	m := maturityCurve.Adoption(year)
	base2016 := maturityCurve.Adoption(2016)
	// Shift relative to the 2016 anchor so the base year reproduces the
	// paper's calibration exactly.
	d := m - base2016
	clamp := func(x float64) float64 {
		if x < 0.02 {
			return 0.02
		}
		if x > 0.98 {
			return 0.98
		}
		return x
	}
	r.EndUserSeesBottleneck = clamp(r.EndUserSeesBottleneck + 1.1*d)
	r.EndUserValueFocus = clamp(r.EndUserValueFocus - 0.9*d)
	r.EndUserConvincedROI = clamp(r.EndUserConvincedROI + 0.8*d)
	r.EndUserNoRoadmap = clamp(r.EndUserNoRoadmap - 0.6*d)
	r.EndUserCommodityOnly = clamp(r.EndUserCommodityOnly - 0.5*d)
	return r
}

// YearPoint is one year of the longitudinal projection.
type YearPoint struct {
	Year int
	// Maturity is the Bass adoption of production analytics.
	Maturity float64
	// SeesBottleneck is the projected share of end-user interviews
	// reporting hardware bottlenecks.
	SeesBottleneck float64
	// Finding1Holds reports whether "industry does not see hardware
	// problems" still holds in the synthesized corpus for that year.
	Finding1Holds bool
}

// ProjectFindings re-derives the findings year by year on corpora
// synthesized with the projected rates. seed fixes the corpus stream.
func ProjectFindings(seed uint64, from, to int) ([]YearPoint, error) {
	if to < from {
		return nil, fmt.Errorf("core: bad projection range [%d, %d]", from, to)
	}
	var out []YearPoint
	for y := from; y <= to; y++ {
		spec := survey.DefaultSpec(seed + uint64(y))
		spec.Rates = ProjectedRates(y)
		c, err := survey.Synthesize(spec)
		if err != nil {
			return nil, err
		}
		fs := survey.DeriveFindings(c)
		sees := c.Proportion(survey.EndUsers, func(iv survey.Interview) bool { return iv.SeesHWBottleneck })
		out = append(out, YearPoint{
			Year: y, Maturity: maturityCurve.Adoption(y),
			SeesBottleneck: sees, Finding1Holds: fs[0].Holds,
		})
	}
	return out, nil
}

// InversionYear returns the first year Finding 1 stops holding — the
// moment Recommendation 12 predicts, when hardware bottlenecks become an
// industry concern. ok is false if it never inverts in the range.
func InversionYear(points []YearPoint) (int, bool) {
	for _, p := range points {
		if !p.Finding1Holds {
			return p.Year, true
		}
	}
	return 0, false
}
