// Package core is the roadmap engine — the paper's primary contribution
// turned into a library. It holds the project model (the Table 1
// consortium), the European roadmap landscape (Figure 1's ETP/PPP
// collaboration map as an executable scope classifier), a technology
// catalog with Bass-diffusion adoption projections for 2015–2025, and the
// twelve Section V.B recommendations, each scored for impact and
// feasibility from the survey corpus and the technology model and ordered
// into a prioritized, time-phased roadmap.
package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
)

// Partner is one consortium member (Table 1).
type Partner struct {
	Name      string
	Short     string
	Expertise string
}

// Consortium returns the RETHINK big consortium exactly as Table 1 lists
// it.
func Consortium() []Partner {
	return []Partner{
		{"Barcelona Supercomputing Center", "BSC", "Computer architecture and system architecture"},
		{"Technische Universitat Berlin", "TUB", "Database systems and information management"},
		{"École Polytechnique Fédérale de Lausanne", "EPFL", "Database systems and applications"},
		{"Centrum Voor Wiskunde en Informatica", "CWI", "Hardware-conscious database technologies"},
		{"University of Manchester", "UoM", "Computer architecture"},
		{"Universidad Politécnica de Madrid", "UPM", "Data mining and warehousing"},
		{"ARM Ltd.", "ARM", "Silicon IP provider"},
		{"Internet Memory Research", "IMR", "Web-scale sourcing platform for business intelligence"},
		{"Thales SA", "THALES", "Situation and decision analysis, planning and optimization"},
	}
}

// Table1 renders the consortium as the paper's Table 1.
func Table1() *metrics.Table {
	t := metrics.NewTable("Table 1: RETHINK big Project Consortium", "Partner Name", "Expertise")
	for _, p := range Consortium() {
		t.AddRow(fmt.Sprintf("%s (%s)", p.Name, p.Short), p.Expertise)
	}
	return t
}

// Topic is a technology/policy area that some European roadmap owns.
type Topic int

// Topics across the roadmap landscape.
const (
	BigDataHardware Topic = iota // RETHINK big's own scope
	BigDataNetworking
	BigDataApplications // BDVA
	HPC                 // ETP4HPC
	IoTDevices          // AIOTI
	TelecomStandards    // 5G-PPP
	GeneralCompute      // ETPs: NEM, NESSI, EPoSS, Photonics21
)

// String implements fmt.Stringer.
func (t Topic) String() string {
	switch t {
	case BigDataHardware:
		return "big-data hardware"
	case BigDataNetworking:
		return "big-data networking"
	case BigDataApplications:
		return "big-data applications & value"
	case HPC:
		return "high-performance computing"
	case IoTDevices:
		return "IoT devices & edge"
	case TelecomStandards:
		return "telecom network standards"
	case GeneralCompute:
		return "general compute (post-Moore)"
	default:
		return fmt.Sprintf("topic(%d)", int(t))
	}
}

// Initiative is one roadmap body in Figure 1's landscape.
type Initiative struct {
	Name   string
	Covers []Topic
}

// Landscape returns the Figure 1 collaboration map: which initiative owns
// which topics, with RETHINK big scoped to Big-Data hardware and
// networking and everything else delegated (Section III).
func Landscape() []Initiative {
	return []Initiative{
		{Name: "RETHINK big", Covers: []Topic{BigDataHardware, BigDataNetworking}},
		{Name: "BDVA", Covers: []Topic{BigDataApplications}},
		{Name: "ETP4HPC", Covers: []Topic{HPC}},
		{Name: "AIOTI", Covers: []Topic{IoTDevices}},
		{Name: "5G-PPP", Covers: []Topic{TelecomStandards}},
		{Name: "ETPs (NEM/NESSI/EPoSS/Photonics21)", Covers: []Topic{GeneralCompute}},
	}
}

// OwnerOf returns the initiative responsible for a topic — the executable
// form of the Section III scoping discussion.
func OwnerOf(t Topic) (Initiative, bool) {
	for _, ini := range Landscape() {
		for _, c := range ini.Covers {
			if c == t {
				return ini, true
			}
		}
	}
	return Initiative{}, false
}

// Figure1 renders the landscape as a coverage table (the text analogue of
// the paper's Figure 1).
func Figure1() *metrics.Table {
	t := metrics.NewTable("Figure 1: ETP/PPP roadmap collaboration landscape", "Initiative", "Covers")
	for _, ini := range Landscape() {
		names := make([]string, len(ini.Covers))
		for i, c := range ini.Covers {
			names[i] = c.String()
		}
		t.AddRow(ini.Name, strings.Join(names, "; "))
	}
	return t
}

// Technology is one roadmap technology with its 2016 state and a Bass
// diffusion model of its adoption.
type Technology struct {
	Name string
	// TRL is the 2016 technology readiness level (1–9).
	TRL int
	// IntroYear is when meaningful commercial availability starts.
	IntroYear int
	// BassP and BassQ are the innovation and imitation coefficients of
	// the Bass diffusion model.
	BassP, BassQ float64
	// Relevance weights the technology's importance to European Big Data
	// competitiveness, in (0, 1].
	Relevance float64
}

// Adoption returns the cumulative adoption fraction in the given year
// under the Bass model: F(t) = (1-e^{-(p+q)t}) / (1+(q/p)e^{-(p+q)t}).
func (tech Technology) Adoption(year int) float64 {
	t := float64(year - tech.IntroYear)
	if t <= 0 {
		return 0
	}
	p, q := tech.BassP, tech.BassQ
	e := math.Exp(-(p + q) * t)
	return (1 - e) / (1 + (q/p)*e)
}

// YearToAdoption returns the first year adoption reaches the target
// fraction, searching up to 2060 (0 when never reached).
func (tech Technology) YearToAdoption(target float64) int {
	for y := tech.IntroYear; y <= 2060; y++ {
		if tech.Adoption(y) >= target {
			return y
		}
	}
	return 0
}

// TechCatalog returns the roadmap's technology set with 2016-era TRLs and
// diffusion parameters. Bass p/q values bracket the classic empirical
// range (p≈0.01–0.06, q≈0.3–0.5); mature commodity tech diffuses fast,
// disruptive tech slowly.
func TechCatalog() []Technology {
	return []Technology{
		{Name: "10/40GbE adoption", TRL: 9, IntroYear: 2012, BassP: 0.06, BassQ: 0.50, Relevance: 0.7},
		{Name: "100GbE fabrics", TRL: 7, IntroYear: 2016, BassP: 0.04, BassQ: 0.45, Relevance: 0.8},
		{Name: "400GbE + silicon photonics", TRL: 4, IntroYear: 2020, BassP: 0.02, BassQ: 0.40, Relevance: 0.8},
		{Name: "SDN/NFV", TRL: 7, IntroYear: 2014, BassP: 0.05, BassQ: 0.45, Relevance: 0.9},
		{Name: "GPGPU analytics", TRL: 8, IntroYear: 2013, BassP: 0.04, BassQ: 0.42, Relevance: 0.85},
		{Name: "FPGA acceleration", TRL: 6, IntroYear: 2015, BassP: 0.02, BassQ: 0.38, Relevance: 0.9},
		{Name: "ASIC/TPU-class accelerators", TRL: 5, IntroYear: 2017, BassP: 0.015, BassQ: 0.40, Relevance: 0.75},
		{Name: "SiP/chiplet integration", TRL: 5, IntroYear: 2017, BassP: 0.02, BassQ: 0.35, Relevance: 0.8},
		{Name: "Non-volatile memory (SCM)", TRL: 5, IntroYear: 2017, BassP: 0.02, BassQ: 0.35, Relevance: 0.7},
		{Name: "Composable/disaggregated DC", TRL: 4, IntroYear: 2019, BassP: 0.015, BassQ: 0.35, Relevance: 0.75},
		{Name: "Neuromorphic computing", TRL: 3, IntroYear: 2021, BassP: 0.008, BassQ: 0.30, Relevance: 0.5},
		{Name: "Accelerated building blocks", TRL: 5, IntroYear: 2016, BassP: 0.025, BassQ: 0.40, Relevance: 0.85},
	}
}

// TechByName indexes the catalog.
func TechByName() map[string]Technology {
	out := map[string]Technology{}
	for _, t := range TechCatalog() {
		out[t.Name] = t
	}
	return out
}

// AdoptionTimeline renders catalog adoption curves over [from, to] as a
// figure (one series per technology) — the roadmap's ten-year projection.
func AdoptionTimeline(from, to int) *metrics.Figure {
	fig := metrics.NewFigure(fmt.Sprintf("Projected technology adoption %d-%d (Bass diffusion)", from, to))
	for _, tech := range TechCatalog() {
		s := fig.Line(tech.Name)
		for y := from; y <= to; y++ {
			s.Add(float64(y), tech.Adoption(y))
		}
	}
	return fig
}

// Horizon is a roadmap phase.
type Horizon int

// Phases of the ten-year roadmap.
const (
	NearTerm Horizon = iota // 0–2 years
	MidTerm                 // 2–5 years
	LongTerm                // 5–10 years
)

// String implements fmt.Stringer.
func (h Horizon) String() string {
	switch h {
	case NearTerm:
		return "near-term (0-2y)"
	case MidTerm:
		return "mid-term (2-5y)"
	case LongTerm:
		return "long-term (5-10y)"
	default:
		return fmt.Sprintf("horizon(%d)", int(h))
	}
}
