package core

import (
	"testing"

	"repro/internal/survey"
)

func TestProjectedRatesAnchor2016(t *testing.T) {
	// The base year must reproduce the paper's calibration exactly.
	if got, want := ProjectedRates(2016), survey.DefaultRates(); got != want {
		t.Fatalf("2016 projection %+v != calibration %+v", got, want)
	}
}

func TestProjectedRatesTrend(t *testing.T) {
	early := ProjectedRates(2016)
	late := ProjectedRates(2024)
	if late.EndUserSeesBottleneck <= early.EndUserSeesBottleneck {
		t.Fatal("bottleneck awareness must rise with maturity")
	}
	if late.EndUserValueFocus >= early.EndUserValueFocus {
		t.Fatal("pure value-focus must recede")
	}
	if late.EndUserNoRoadmap >= early.EndUserNoRoadmap {
		t.Fatal("roadmap-less share must shrink")
	}
	// All projected probabilities stay in (0, 1).
	for y := 2014; y <= 2035; y++ {
		r := ProjectedRates(y)
		for _, p := range []float64{
			r.EndUserSeesBottleneck, r.EndUserValueFocus, r.EndUserConvincedROI,
			r.EndUserNoRoadmap, r.EndUserCommodityOnly,
		} {
			if p <= 0 || p >= 1 {
				t.Fatalf("year %d: probability %v out of range", y, p)
			}
		}
	}
}

func TestProjectFindingsInverts(t *testing.T) {
	points, err := ProjectFindings(2016, 2016, 2030)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 15 {
		t.Fatalf("points = %d", len(points))
	}
	if !points[0].Finding1Holds {
		t.Fatal("Finding 1 must hold in the paper's base year")
	}
	year, ok := InversionYear(points)
	if !ok {
		t.Fatal("Finding 1 should invert as analytics matures (Recommendation 12's prediction)")
	}
	if year <= 2017 || year > 2030 {
		t.Fatalf("inversion year = %d, want within (2017, 2030]", year)
	}
	// Maturity is monotone.
	for i := 1; i < len(points); i++ {
		if points[i].Maturity < points[i-1].Maturity {
			t.Fatal("maturity not monotone")
		}
	}
}

func TestProjectFindingsValidation(t *testing.T) {
	if _, err := ProjectFindings(1, 2020, 2016); err == nil {
		t.Fatal("bad range must error")
	}
}
