// Package ecosystem models Recommendation 8: "Europe should address
// access to training data by encouraging the collection of open anonymized
// training data and encouraging the sharing of anonymized training data
// inside EC-funded projects." Model-quality improvement from data follows
// the standard empirical power-law learning curve err(n) = e∞ + b·n^(−α);
// pooling the members' corpora moves every participant down that curve,
// and — the policy-relevant part — moves *small* players furthest, which
// is exactly the fragmentation remedy Finding 3 calls for.
package ecosystem

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// LearningCurve is the power-law sample-efficiency model.
type LearningCurve struct {
	// IrreducibleErr is the Bayes floor e∞.
	IrreducibleErr float64
	// B and Alpha shape the reducible term b·n^(−α); α≈0.3–0.5 is the
	// empirically common range for classification tasks.
	B, Alpha float64
}

// DefaultCurve returns a representative classification task: 5% floor,
// err(1000) ≈ 15.6%, α = 0.35.
func DefaultCurve() LearningCurve {
	return LearningCurve{IrreducibleErr: 0.05, B: 1.2, Alpha: 0.35}
}

// Err returns the expected model error with n training samples.
func (c LearningCurve) Err(n float64) float64 {
	if n < 1 {
		n = 1
	}
	return c.IrreducibleErr + c.B*math.Pow(n, -c.Alpha)
}

// SamplesFor returns the corpus size needed to reach the target error
// (+Inf if the target is at or below the irreducible floor).
func (c LearningCurve) SamplesFor(targetErr float64) float64 {
	if targetErr <= c.IrreducibleErr {
		return math.Inf(1)
	}
	return math.Pow(c.B/(targetErr-c.IrreducibleErr), 1/c.Alpha)
}

// Member is one company in the data-sharing consortium.
type Member struct {
	Name string
	// Samples is the member's own training corpus size.
	Samples float64
}

// Study compares siloed training against pooled training for a consortium.
type Study struct {
	Curve LearningCurve
	// PoolEfficiency in (0, 1] discounts pooled data for heterogeneity
	// and anonymization loss (1 = perfectly exchangeable data).
	PoolEfficiency float64
	Members        []Member
}

// NewStudy builds a consortium of k members whose corpus sizes follow a
// Zipf distribution over [minSamples, maxSamples] — a few data-rich
// incumbents, a long tail of data-poor SMEs — as the European landscape
// the paper describes.
func NewStudy(seed uint64, k int, minSamples, maxSamples float64) *Study {
	rng := sim.NewRNG(seed)
	z := sim.NewZipf(rng, 1.1, k)
	members := make([]Member, k)
	for i := range members {
		// Zipf draws concentrate near 0 → most members sit near
		// minSamples, a few incumbents near maxSamples.
		frac := float64(z.Next()) / float64(k)
		members[i] = Member{
			Name:    fmt.Sprintf("member-%02d", i),
			Samples: minSamples + frac*frac*(maxSamples-minSamples),
		}
	}
	return &Study{Curve: DefaultCurve(), PoolEfficiency: 0.8, Members: members}
}

// Result is one member's outcome.
type Result struct {
	Member    Member
	SiloedErr float64
	PooledErr float64
	// Improvement is (siloed − pooled) / siloed, in [0, 1).
	Improvement float64
}

// Run evaluates every member siloed and pooled.
func (s *Study) Run() ([]Result, error) {
	if len(s.Members) == 0 {
		return nil, fmt.Errorf("ecosystem: empty consortium")
	}
	if s.PoolEfficiency <= 0 || s.PoolEfficiency > 1 {
		return nil, fmt.Errorf("ecosystem: pool efficiency %v out of (0,1]", s.PoolEfficiency)
	}
	total := 0.0
	for _, m := range s.Members {
		total += m.Samples
	}
	pooledN := total * s.PoolEfficiency
	out := make([]Result, len(s.Members))
	for i, m := range s.Members {
		se := s.Curve.Err(m.Samples)
		// A member keeps full fidelity on its own data and gains the
		// pool's discounted remainder.
		pe := s.Curve.Err(m.Samples + (pooledN - m.Samples*s.PoolEfficiency))
		if pe > se {
			pe = se // pooling never hurts (a member can ignore the pool)
		}
		out[i] = Result{
			Member: m, SiloedErr: se, PooledErr: pe,
			Improvement: (se - pe) / se,
		}
	}
	return out, nil
}

// Summary aggregates a study run.
type Summary struct {
	MeanSiloedErr, MeanPooledErr float64
	// SmallestGain / LargestGain are the improvements of the most
	// data-poor and most data-rich members.
	SmallestMemberGain, LargestMemberGain float64
	// ViableSoloMembers / ViablePooledMembers count members reaching the
	// target error alone vs with the pool.
	ViableSolo, ViablePooled int
	TargetErr                float64
}

// Summarize computes the aggregate with the given viability target.
func Summarize(results []Result, targetErr float64) Summary {
	sum := Summary{TargetErr: targetErr}
	if len(results) == 0 {
		return sum
	}
	sorted := append([]Result(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Member.Samples < sorted[j].Member.Samples
	})
	for _, r := range sorted {
		sum.MeanSiloedErr += r.SiloedErr
		sum.MeanPooledErr += r.PooledErr
		if r.SiloedErr <= targetErr {
			sum.ViableSolo++
		}
		if r.PooledErr <= targetErr {
			sum.ViablePooled++
		}
	}
	n := float64(len(sorted))
	sum.MeanSiloedErr /= n
	sum.MeanPooledErr /= n
	sum.SmallestMemberGain = sorted[0].Improvement
	sum.LargestMemberGain = sorted[len(sorted)-1].Improvement
	return sum
}
