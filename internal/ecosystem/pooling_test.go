package ecosystem

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLearningCurveMonotone(t *testing.T) {
	c := DefaultCurve()
	prev := math.Inf(1)
	for _, n := range []float64{1, 10, 100, 1e3, 1e5, 1e7} {
		e := c.Err(n)
		if e >= prev {
			t.Fatalf("error not decreasing at n=%g: %v >= %v", n, e, prev)
		}
		if e < c.IrreducibleErr {
			t.Fatalf("error below floor at n=%g", n)
		}
		prev = e
	}
}

func TestSamplesForInvertsErr(t *testing.T) {
	c := DefaultCurve()
	for _, target := range []float64{0.3, 0.15, 0.08} {
		n := c.SamplesFor(target)
		if math.Abs(c.Err(n)-target) > 1e-9 {
			t.Fatalf("Err(SamplesFor(%v)) = %v", target, c.Err(n))
		}
	}
	if !math.IsInf(c.SamplesFor(c.IrreducibleErr), 1) {
		t.Fatal("floor must need infinite data")
	}
}

func TestPoolingNeverHurtsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := NewStudy(seed, 12, 500, 2e6)
		results, err := s.Run()
		if err != nil {
			return false
		}
		for _, r := range results {
			if r.PooledErr > r.SiloedErr+1e-12 || r.Improvement < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallMembersGainMost(t *testing.T) {
	s := NewStudy(2016, 15, 500, 5e6)
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results, 0.10)
	if sum.SmallestMemberGain <= sum.LargestMemberGain {
		t.Fatalf("data-poor member gain (%v) should exceed data-rich (%v)",
			sum.SmallestMemberGain, sum.LargestMemberGain)
	}
	if sum.MeanPooledErr >= sum.MeanSiloedErr {
		t.Fatal("pooling must cut mean error")
	}
	if sum.ViablePooled < sum.ViableSolo {
		t.Fatal("pooling must not reduce viability")
	}
}

func TestPoolingViabilityExpands(t *testing.T) {
	s := NewStudy(7, 20, 200, 1e6)
	results, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(results, 0.12)
	if sum.ViablePooled <= sum.ViableSolo {
		t.Fatalf("pooling should make more members viable: %d vs %d",
			sum.ViablePooled, sum.ViableSolo)
	}
}

func TestStudyValidation(t *testing.T) {
	s := &Study{Curve: DefaultCurve(), PoolEfficiency: 0}
	s.Members = []Member{{Name: "a", Samples: 100}}
	if _, err := s.Run(); err == nil {
		t.Fatal("bad pool efficiency must error")
	}
	empty := &Study{Curve: DefaultCurve(), PoolEfficiency: 0.8}
	if _, err := empty.Run(); err == nil {
		t.Fatal("empty consortium must error")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil, 0.1); s.MeanSiloedErr != 0 {
		t.Fatal("empty summary must be zero")
	}
}
