package tco

import (
	"math"
	"testing"

	"repro/internal/hw"
)

// analyticsKernel is a representative compute-heavy analytics block:
// enough arithmetic per byte that accelerators shine.
func analyticsKernel() hw.Kernel {
	return hw.Kernel{Name: "analytics", Ops: 2e9, Bytes: 4e7, ParallelFraction: 0.98}
}

func TestFleetCapexAndPower(t *testing.T) {
	f := Fleet{Node: hw.CommodityNode(), Count: 10, Utilization: 0.5, Years: 3}
	if f.CapexEUR() != 10*hw.XeonCPU().PriceEUR {
		t.Fatalf("capex = %v", f.CapexEUR())
	}
	// Power at 50%: halfway between idle and TDP.
	cpu := hw.XeonCPU()
	want := cpu.IdleWatts + 0.5*(cpu.TDPWatts-cpu.IdleWatts)
	if math.Abs(f.MeanPowerW()-want) > 1e-9 {
		t.Fatalf("power = %v, want %v", f.MeanPowerW(), want)
	}
}

func TestEnergyScalesWithPUE(t *testing.T) {
	f := Fleet{Node: hw.CommodityNode(), Count: 1, Utilization: 1, Years: 1}
	lean := Electricity{EURPerKWh: 0.12, PUE: 1.1}
	fat := Electricity{EURPerKWh: 0.12, PUE: 2.0}
	if r := f.EnergyKWh(fat) / f.EnergyKWh(lean); math.Abs(r-2.0/1.1) > 1e-12 {
		t.Fatalf("energy ratio = %v, want %v", r, 2.0/1.1)
	}
}

func TestTCOIsCapexPlusOpex(t *testing.T) {
	f := Fleet{Node: hw.GPUNode(), Count: 5, Utilization: 0.7, Years: 3, AdminEURPerNodeYear: 500}
	e := DefaultElectricity()
	if got := f.TCOEUR(e); math.Abs(got-(f.CapexEUR()+f.OpexEUR(e))) > 1e-9 {
		t.Fatalf("TCO = %v", got)
	}
}

func TestNodeThroughputOffloadBottleneck(t *testing.T) {
	k := analyticsKernel()
	n := hw.GPUNode()
	cpuOnly := NodeThroughput(hw.CommodityNode(), k, 0.8)
	if cpuOnly != hw.XeonCPU().Throughput(k) {
		t.Fatal("CPU-only node must run at CPU throughput regardless of offload fraction")
	}
	full := NodeThroughput(n, k, 1.0)
	if math.Abs(full-hw.GPGPU().Throughput(k)) > full*1e-9 {
		t.Fatalf("full offload = %v, want GPU rate", full)
	}
	// Partial offload is bounded by both sides and is at least the CPU-only
	// rate for this compute-heavy kernel.
	part := NodeThroughput(n, k, 0.8)
	if part <= cpuOnly {
		t.Fatalf("80%% offload (%v) should beat CPU-only (%v)", part, cpuOnly)
	}
	if part > full {
		t.Fatalf("partial offload (%v) cannot beat full offload (%v) on a GPU-bound kernel", part, full)
	}
}

func TestNodeThroughputZeroOffload(t *testing.T) {
	k := analyticsKernel()
	if NodeThroughput(hw.GPUNode(), k, 0) != hw.XeonCPU().Throughput(k) {
		t.Fatal("zero offload fraction must equal CPU rate")
	}
}

func TestStudyHighUtilizationFavorsGPU(t *testing.T) {
	s := DefaultStudy(hw.CommodityNode(), hw.GPUNode(), analyticsKernel())
	s.Utilization = 0.9
	s.WorkRate = 100000
	r, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r.SavingsEUR <= 0 {
		t.Fatalf("at high utilization GPU fleet should win: savings = %v", r.SavingsEUR)
	}
	if r.AcceleratedNodes >= r.BaselineNodes {
		t.Fatalf("accelerated fleet should be smaller: %d vs %d", r.AcceleratedNodes, r.BaselineNodes)
	}
	if r.SpeedupPerNode < 2 {
		t.Fatalf("per-node speedup = %v, want >= 2 on compute-heavy kernel", r.SpeedupPerNode)
	}
}

func TestStudyTinyWorkloadFavorsCPU(t *testing.T) {
	// Section IV.B.2: small operators with low, bursty load cannot justify
	// the GPU investment — one CPU node suffices and porting is pure cost.
	s := DefaultStudy(hw.CommodityNode(), hw.GPUNode(), analyticsKernel())
	s.Utilization = 0.1
	s.WorkRate = 20 // kernels/s: one node handles it
	r, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if r.SavingsEUR >= 0 {
		t.Fatalf("tiny workload should favor commodity CPU: savings = %v", r.SavingsEUR)
	}
}

func TestBreakEvenWorkRateMonotone(t *testing.T) {
	s := DefaultStudy(hw.CommodityNode(), hw.GPUNode(), analyticsKernel())
	s.Utilization = 0.6
	be, ok := s.BreakEvenWorkRate(1, 1e7)
	if !ok {
		t.Fatal("expected a break-even point")
	}
	// Below break-even the GPU loses; above it wins.
	check := func(w float64, wantWin bool) {
		c := *s
		c.WorkRate = w
		r, err := c.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if (r.SavingsEUR > 0) != wantWin {
			t.Fatalf("at rate %v savings = %v, wantWin=%v", w, r.SavingsEUR, wantWin)
		}
	}
	check(be*4, true)
	check(be/64, false)
}

func TestStudyUtilizationValidation(t *testing.T) {
	s := DefaultStudy(hw.CommodityNode(), hw.GPUNode(), analyticsKernel())
	s.Utilization = 0
	if _, err := s.Evaluate(); err == nil {
		t.Fatal("expected utilization validation error")
	}
	s.Utilization = 1.5
	if _, err := s.Evaluate(); err == nil {
		t.Fatal("expected utilization validation error")
	}
}

func TestPortingChargedToAcceleratedSide(t *testing.T) {
	s := DefaultStudy(hw.CommodityNode(), hw.GPUNode(), analyticsKernel())
	s.PortingPersonMonths = 0
	r0, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	s.PortingPersonMonths = 12
	r1, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if delta := r1.AcceleratedTCO - r0.AcceleratedTCO; math.Abs(delta-120000) > 1e-6 {
		t.Fatalf("porting delta = %v, want 120000", delta)
	}
	if r1.BaselineTCO != r0.BaselineTCO {
		t.Fatal("porting must not affect baseline TCO")
	}
}

func TestVendorSwitchCost(t *testing.T) {
	v := DefaultVendorSwitch()
	nreOnly := v.CostEUR(0)
	if nreOnly != 24*10000 {
		t.Fatalf("NRE = %v, want 240000", nreOnly)
	}
	withLoss := v.CostEUR(100000)
	if withLoss <= nreOnly {
		t.Fatal("throughput loss must add cost")
	}
	if want := nreOnly + 0.3*6*100000; math.Abs(withLoss-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", withLoss, want)
	}
}

func TestFPGAEnergyAdvantage(t *testing.T) {
	// The Catapult narrative: FPGA nodes deliver better ops/J on the
	// suitable kernel even when raw throughput is lower than a GPU's.
	k := analyticsKernel()
	fpga := hw.FPGACard()
	gpu := hw.GPGPU()
	if fpga.OpsPerJoule(k) <= gpu.OpsPerJoule(k) {
		t.Fatalf("FPGA ops/J (%v) should beat GPU (%v) at 25W vs 300W",
			fpga.OpsPerJoule(k), gpu.OpsPerJoule(k))
	}
}
