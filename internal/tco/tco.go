// Package tco models datacenter total cost of ownership and the
// accelerator return-on-investment question at the heart of the roadmap's
// industry findings (Section V.A.2: "European companies are not convinced
// of the Return on Investment of using novel hardware") and of Section
// IV.B.2 (GPGPU "power consumption is too high and utilization too low to
// justify the investment"). It combines capex, energy at a PUE, admin
// overhead, and — the cost the roadmap stresses — the one-off software
// re-engineering (porting) investment that accelerators demand.
package tco

import (
	"fmt"
	"math"

	"repro/internal/hw"
)

// Electricity holds the energy-cost environment.
type Electricity struct {
	// EURPerKWh is the industrial electricity price.
	EURPerKWh float64
	// PUE is the facility power usage effectiveness multiplier.
	PUE float64
}

// DefaultElectricity returns a 2016 European datacenter environment:
// 0.12 EUR/kWh at PUE 1.5.
func DefaultElectricity() Electricity { return Electricity{EURPerKWh: 0.12, PUE: 1.5} }

// HoursPerYear is the wall-clock hours in a year of continuous operation.
const HoursPerYear = 8766.0

// Fleet is a homogeneous set of servers operated for a horizon.
type Fleet struct {
	Node  *hw.Node
	Count int
	// Utilization is the busy fraction of wall time, in [0, 1].
	Utilization float64
	Years       float64
	// AdminEURPerNodeYear covers operations staffing per node.
	AdminEURPerNodeYear float64
}

// CapexEUR returns the fleet acquisition cost.
func (f Fleet) CapexEUR() float64 {
	return float64(f.Count) * f.Node.TotalPrice()
}

// MeanPowerW returns the average draw of one node: every device idles, and
// the busy fraction lifts it toward TDP.
func (f Fleet) MeanPowerW() float64 {
	w := f.Node.Host.Power(f.Utilization)
	for _, d := range f.Node.Accels {
		w += d.Power(f.Utilization)
	}
	return w
}

// EnergyKWh returns facility energy over the horizon, including PUE.
func (f Fleet) EnergyKWh(e Electricity) float64 {
	return f.MeanPowerW() / 1000 * HoursPerYear * f.Years * float64(f.Count) * e.PUE
}

// OpexEUR returns energy plus admin cost over the horizon.
func (f Fleet) OpexEUR(e Electricity) float64 {
	energy := f.EnergyKWh(e) * e.EURPerKWh
	admin := f.AdminEURPerNodeYear * float64(f.Count) * f.Years
	return energy + admin
}

// TCOEUR returns capex plus opex.
func (f Fleet) TCOEUR(e Electricity) float64 { return f.CapexEUR() + f.OpexEUR(e) }

// NodeThroughput returns the sustainable kernel rate of a node when a
// fraction offloadFrac of arriving work can run on the node's best
// accelerator and the rest must stay on the host CPU. The two run
// concurrently, so the node saturates when either side does:
// R = min(T_accel/f, T_cpu/(1−f)).
func NodeThroughput(n *hw.Node, k hw.Kernel, offloadFrac float64) float64 {
	cpuT := n.Host.Throughput(k)
	if len(n.Accels) == 0 || offloadFrac <= 0 {
		return cpuT
	}
	best, _ := n.BestDevice(k)
	accT := best.Throughput(k)
	if best == n.Host {
		return cpuT
	}
	if offloadFrac >= 1 {
		return accT
	}
	rAcc := accT / offloadFrac
	rCPU := cpuT / (1 - offloadFrac)
	if rAcc < rCPU {
		return rAcc
	}
	return rCPU
}

// Study compares a baseline fleet against an accelerated fleet delivering
// the same sustained workload.
type Study struct {
	Baseline    *hw.Node
	Accelerated *hw.Node
	Kernel      hw.Kernel
	// OffloadFraction is the share of work the accelerator can absorb.
	OffloadFraction float64
	// WorkRate is the average workload in kernels/second the service must
	// sustain fleet-wide.
	WorkRate float64
	// Utilization is the fleet duty cycle: fleets are sized for peak =
	// WorkRate / Utilization. Low utilization is exactly the regime where
	// the roadmap's interviewees saw accelerator ROI evaporate.
	Utilization float64
	Years       float64
	Elec        Electricity
	// PortingPersonMonths is the one-off software re-engineering effort to
	// use the accelerator; EURPerPersonMonth prices it.
	PortingPersonMonths float64
	EURPerPersonMonth   float64
	AdminEURPerNodeYear float64
}

// DefaultStudy returns a study with representative economics: a 3-year
// horizon, 6 person-months of porting at 10 kEUR/PM, 500 EUR/node-year
// admin.
func DefaultStudy(baseline, accelerated *hw.Node, k hw.Kernel) *Study {
	return &Study{
		Baseline: baseline, Accelerated: accelerated, Kernel: k,
		OffloadFraction: 0.8, WorkRate: 50000, Utilization: 0.5,
		Years: 3, Elec: DefaultElectricity(),
		PortingPersonMonths: 6, EURPerPersonMonth: 10000,
		AdminEURPerNodeYear: 500,
	}
}

// Result holds the two fleets' economics.
type Result struct {
	BaselineNodes, AcceleratedNodes int
	BaselineTCO, AcceleratedTCO     float64 // EUR, porting included on the accelerated side
	PortingEUR                      float64
	// SavingsEUR is baseline minus accelerated (positive: accelerator wins).
	SavingsEUR float64
	// SavingsRatio is accelerated/baseline TCO.
	SavingsRatio float64
	// SpeedupPerNode is accelerated/baseline node throughput.
	SpeedupPerNode float64
}

// nodesFor returns the fleet size to sustain peak load on the given node.
func (s *Study) nodesFor(n *hw.Node) (int, float64, error) {
	perNode := NodeThroughput(n, s.Kernel, s.offloadFor(n))
	if perNode <= 0 {
		return 0, 0, fmt.Errorf("tco: node %q has zero throughput", n.Name)
	}
	if s.Utilization <= 0 || s.Utilization > 1 {
		return 0, 0, fmt.Errorf("tco: utilization %v out of (0,1]", s.Utilization)
	}
	peak := s.WorkRate / s.Utilization
	return int(math.Ceil(peak / perNode)), perNode, nil
}

func (s *Study) offloadFor(n *hw.Node) float64 {
	if len(n.Accels) == 0 {
		return 0
	}
	return s.OffloadFraction
}

// Evaluate sizes both fleets for the workload and compares TCO.
func (s *Study) Evaluate() (Result, error) {
	nb, tb, err := s.nodesFor(s.Baseline)
	if err != nil {
		return Result{}, err
	}
	na, ta, err := s.nodesFor(s.Accelerated)
	if err != nil {
		return Result{}, err
	}
	base := Fleet{Node: s.Baseline, Count: nb, Utilization: s.Utilization,
		Years: s.Years, AdminEURPerNodeYear: s.AdminEURPerNodeYear}
	acc := Fleet{Node: s.Accelerated, Count: na, Utilization: s.Utilization,
		Years: s.Years, AdminEURPerNodeYear: s.AdminEURPerNodeYear}
	porting := s.PortingPersonMonths * s.EURPerPersonMonth
	bt := base.TCOEUR(s.Elec)
	at := acc.TCOEUR(s.Elec) + porting
	r := Result{
		BaselineNodes: nb, AcceleratedNodes: na,
		BaselineTCO: bt, AcceleratedTCO: at, PortingEUR: porting,
		SavingsEUR: bt - at, SpeedupPerNode: ta / tb,
	}
	if bt > 0 {
		r.SavingsRatio = at / bt
	}
	return r, nil
}

// BreakEvenWorkRate finds the smallest sustained workload (kernels/s) at
// which the accelerated fleet's TCO matches the baseline's, by bisection
// over [lo, hi]. Below it the accelerator investment never pays back —
// the "small to medium-sized operators" regime of Section IV.B.2. The
// second return is false if no break-even exists in the range.
func (s *Study) BreakEvenWorkRate(lo, hi float64) (float64, bool) {
	save := func(w float64) float64 {
		c := *s
		c.WorkRate = w
		r, err := c.Evaluate()
		if err != nil {
			return math.Inf(-1)
		}
		return r.SavingsEUR
	}
	if save(hi) <= 0 {
		return 0, false
	}
	if save(lo) > 0 {
		return lo, true
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if save(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// VendorSwitch models the non-recurring engineering cost of changing
// accelerator vendor (Section IV.B.2: "considerable Non-recurring
// Engineering (NRE) cost required for a change in GPU vendor").
type VendorSwitch struct {
	// CodePersonMonths re-engineers kernels and build/runtime glue.
	CodePersonMonths float64
	// ValidationPersonMonths requalifies results and performance.
	ValidationPersonMonths float64
	EURPerPersonMonth      float64
	// PerfRegressionFraction is the expected transient throughput loss
	// until retuning completes, in [0,1).
	PerfRegressionFraction float64
	// RetuneMonths is how long the regression lasts.
	RetuneMonths float64
}

// DefaultVendorSwitch returns representative CUDA-to-other-vendor costs.
func DefaultVendorSwitch() VendorSwitch {
	return VendorSwitch{
		CodePersonMonths: 18, ValidationPersonMonths: 6,
		EURPerPersonMonth:      10000,
		PerfRegressionFraction: 0.3, RetuneMonths: 6,
	}
}

// CostEUR returns the switch NRE plus the value of lost throughput, where
// fleetValueEURPerMonth prices the fleet's output.
func (v VendorSwitch) CostEUR(fleetValueEURPerMonth float64) float64 {
	nre := (v.CodePersonMonths + v.ValidationPersonMonths) * v.EURPerPersonMonth
	loss := v.PerfRegressionFraction * v.RetuneMonths * fleetValueEURPerMonth
	return nre + loss
}
