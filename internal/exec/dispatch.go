package exec

import (
	"fmt"
	"sync"

	"repro/internal/kernels"
)

// KernelKind names the operator kernels the batch engine dispatches.
type KernelKind int

// Dispatchable operator kernels.
const (
	FilterWork KernelKind = iota
	ProjectWork
	SortWork
	AggWork
)

func (k KernelKind) String() string {
	switch k {
	case FilterWork:
		return "filter"
	case ProjectWork:
		return "project"
	case SortWork:
		return "sort"
	case AggWork:
		return "aggregate"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// defaultSelectivity is the planner default for unobserved filters,
// matching the accel stage planner.
const defaultSelectivity = 0.5

// selEWMAAlpha weights the newest observed morsel selectivity into the
// running estimate.
const selEWMAAlpha = 0.25

// Dispatch configures one operator's dispatcher.
type Dispatch struct {
	// Kind selects the kernel cost shape.
	Kind KernelKind
	// ExpectedRows estimates the total rows the operator will process
	// (the planner's cardinality hint); one-off device setup amortizes
	// over the implied morsel count. 0 means unknown (one-shot pricing).
	ExpectedRows int
	// Width is the kernel's secondary size: computed columns for
	// ProjectWork, expected groups for AggWork, key count for SortWork.
	// 0 picks a kernel-appropriate default.
	Width int
}

// OpCost is one operator's accumulated modeled execution cost — the
// heterogeneous slice of its OpStats. Seconds includes the overhead
// components; Devices counts morsels per device name.
type OpCost struct {
	Kernel          string
	Morsels         int
	Seconds         float64
	TransferSeconds float64
	LaunchSeconds   float64
	SetupSeconds    float64
	EnergyJ         float64
	// QueueWaits/QueueSeconds count device-occupancy queueing (morsels
	// that found every slot of their chosen device busy). Not folded
	// into Seconds — see exec.Cost.
	QueueWaits   int
	QueueSeconds float64
	Devices      map[string]int
}

// String renders a compact per-operator summary.
func (c OpCost) String() string {
	return fmt.Sprintf("%s: %d morsels over %v, %.3gs modeled", c.Kernel, c.Morsels, c.Devices, c.Seconds)
}

// Dispatcher places one operator's morsels. It is shared by the
// operator's partitions (like the engine's row counters) and is safe for
// concurrent use; the observed-selectivity feedback loop lives here, so
// later morsels are priced with what earlier morsels measured.
type Dispatcher struct {
	p   *Placer
	cfg Dispatch

	mu   sync.Mutex
	sel  float64 // EWMA of observed keep fraction; <0 until observed
	cost OpCost
}

// Dispatcher returns a dispatcher for one operator.
func (p *Placer) Dispatcher(cfg Dispatch) *Dispatcher {
	return &Dispatcher{p: p, cfg: cfg, sel: -1, cost: OpCost{Kernel: cfg.Kind.String(), Devices: map[string]int{}}}
}

// kernel builds the priced kernel for one morsel of `rows` rows, folding
// in the selectivity feedback.
func (d *Dispatcher) kernel(rows int, sel float64) Kernel {
	width := d.cfg.Width
	k := Kernel{Name: d.cfg.Kind.String()}
	switch d.cfg.Kind {
	case FilterWork:
		if sel < 0 {
			sel = defaultSelectivity
		}
		k.Branchy = true
		k.Desc = kernels.FilterDescriptor(rows, sel)
		k.HostBytes = 8 * float64(rows) * (1 + sel)
	case ProjectWork:
		if width < 1 {
			width = 1
		}
		k.Desc = kernels.ProjectDescriptor(rows, width)
		k.HostBytes = 8 * float64(rows) * float64(width+1)
	case SortWork:
		k.Desc = kernels.SortDescriptor(rows)
		if width > 1 {
			// Multi-key sorts fall off the radix kernel onto comparison
			// sorting: per-element work scales with the key count.
			k.Desc.Ops *= float64(width)
		}
		k.HostBytes = 16 * float64(rows)
	case AggWork:
		if width < 1 {
			width = 64
		}
		k.Desc = kernels.AggregateDescriptor(rows, width)
		k.HostBytes = 8*float64(rows) + 16*float64(width)
	}
	return k
}

// place runs one morsel: build the kernel, let the policy pick a device
// (amortizing setup over the expected morsel count), execute fn on it,
// and charge the modeled cost into the operator and placer aggregates.
func (d *Dispatcher) place(rows int, fn func() error) error {
	if rows <= 0 {
		return fn()
	}
	d.mu.Lock()
	sel := d.sel
	d.mu.Unlock()
	m := MorselStats{Rows: rows, Selectivity: sel, Runs: 1}
	if d.cfg.ExpectedRows > rows {
		m.Runs = (d.cfg.ExpectedRows + rows - 1) / rows
	}
	k := d.kernel(rows, sel)
	dev := d.p.pol.Pick(d.p.devs, k, m)
	cost, err := dev.Run(k, m, fn)
	d.p.agg.charge(dev, rows, cost)
	d.mu.Lock()
	d.cost.Morsels++
	d.cost.Seconds += cost.Seconds
	d.cost.TransferSeconds += cost.TransferSeconds
	d.cost.LaunchSeconds += cost.LaunchSeconds
	d.cost.SetupSeconds += cost.SetupSeconds
	d.cost.EnergyJ += cost.EnergyJ
	d.cost.QueueWaits += cost.QueueWaits
	d.cost.QueueSeconds += cost.QueueSeconds
	d.cost.Devices[dev.Name()]++
	d.mu.Unlock()
	return err
}

// Run dispatches one morsel of rows through the placement policy. fn is
// the reference implementation and always executes — devices model cost,
// not semantics — so Run with any policy returns exactly fn's result. A
// nil dispatcher just runs fn (the homogeneous engine).
func (d *Dispatcher) Run(rows int, fn func() error) error {
	if d == nil {
		return fn()
	}
	return d.place(rows, fn)
}

// RunFilter is Run for filter kernels: fn additionally reports how many
// rows it kept, feeding the selectivity EWMA that prices later morsels
// (the Result.Selectivity feedback loop at operator granularity).
func (d *Dispatcher) RunFilter(rows int, fn func() (kept int, err error)) error {
	if d == nil {
		_, err := fn()
		return err
	}
	return d.place(rows, func() error {
		kept, err := fn()
		if err != nil {
			return err
		}
		if rows > 0 {
			obs := float64(kept) / float64(rows)
			d.mu.Lock()
			if d.sel < 0 {
				d.sel = obs
			} else {
				d.sel = selEWMAAlpha*obs + (1-selEWMAAlpha)*d.sel
			}
			d.mu.Unlock()
		}
		return nil
	})
}

// Selectivity returns the current observed-selectivity estimate
// (negative before any morsel has been observed).
func (d *Dispatcher) Selectivity() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sel
}

// Cost snapshots the operator's accumulated modeled cost.
func (d *Dispatcher) Cost() OpCost {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.cost
	out.Devices = make(map[string]int, len(d.cost.Devices))
	for k, v := range d.cost.Devices {
		out.Devices[k] = v
	}
	return out
}
