package exec

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/accel"
	"repro/internal/hw"
)

// TestDeviceCatalog: names resolve to fresh devices with the expected
// styles; unknown names and duplicates are rejected.
func TestDeviceCatalog(t *testing.T) {
	devs, err := NewDevices([]string{"cpu", "gpu", "fpga"})
	if err != nil {
		t.Fatal(err)
	}
	styles := map[string]accel.Style{"cpu": accel.SIMD, "gpu": accel.SIMT, "fpga": accel.Pipeline}
	for _, d := range devs {
		if d.Style() != styles[d.Name()] {
			t.Fatalf("%s: style %v, want %v", d.Name(), d.Style(), styles[d.Name()])
		}
	}
	if _, err := NewDevice("tpu"); err == nil {
		t.Fatal("unknown device must error")
	}
	if _, err := NewDevices([]string{"cpu", "cpu"}); err == nil {
		t.Fatal("duplicate devices must error")
	}
}

// TestOffloadOverheadsShapePlacement: the cost-based policy's job on
// this catalog is mostly to *refuse* offload — with 2016-era PCIe
// (12 GB/s) against 120 GB/s socket bandwidth, a bandwidth-bound SQL
// kernel can never pay for the transfer (the roadmap's case for tighter
// accelerator integration, Recommendations 4/10) — and the estimates
// must show why: the GPU's cost is transfer-dominated, the pipeline's
// one-shot cost is reconfiguration-dominated. Without a CPU in the set
// the policy still ranks the accelerators sensibly.
func TestOffloadOverheadsShapePlacement(t *testing.T) {
	p, err := NewPlacer([]string{"cpu", "gpu", "fpga"}, "auto")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []KernelKind{FilterWork, ProjectWork, AggWork} {
		d := p.Dispatcher(Dispatch{Kind: kind, ExpectedRows: 1 << 20})
		if err := d.Run(1024, func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		if got := d.Cost().Devices["cpu"]; got != 1 {
			t.Fatalf("%s morsel must stay on cpu (PCIe-bound offload): %v", kind, d.Cost().Devices)
		}
	}
	// Even a whole-input 4M-row sort stays: the GPU's PCIe transfer
	// alone exceeds the CPU's in-socket memory time.
	big := p.Dispatcher(Dispatch{Kind: SortWork})
	if err := big.Run(1<<22, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := big.Cost().Devices["cpu"]; got != 1 {
		t.Fatalf("4M-row sort should stay on cpu: %v", big.Cost().Devices)
	}

	// The estimates expose the bottlenecks the decisions came from.
	gpu, err := NewDevice("gpu")
	if err != nil {
		t.Fatal(err)
	}
	k := p.Dispatcher(Dispatch{Kind: SortWork}).kernel(1<<22, -1)
	gest := gpu.Estimate(k, MorselStats{Rows: 1 << 22, Runs: 1})
	if gest.TransferSeconds < gest.Seconds/2 {
		t.Fatalf("GPU sort cost must be transfer-dominated: %+v", gest)
	}
	fpga, err := NewDevice("fpga")
	if err != nil {
		t.Fatal(err)
	}
	fest := fpga.Estimate(k, MorselStats{Rows: 1 << 22, Runs: 1})
	if fest.SetupSeconds < fest.Seconds {
		t.Fatalf("one-shot FPGA cost must be reconfiguration-dominated: %+v", fest)
	}

	// CPU removed from the set: the launch+transfer-cheap GPU beats the
	// reconfiguring pipeline for a one-shot morsel.
	accOnly, err := NewPlacer([]string{"gpu", "fpga"}, "auto")
	if err != nil {
		t.Fatal(err)
	}
	d := accOnly.Dispatcher(Dispatch{Kind: FilterWork})
	if err := d.Run(1024, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := d.Cost().Devices["gpu"]; got != 1 {
		t.Fatalf("cpu-less set must fall to the gpu: %v", d.Cost().Devices)
	}
}

// TestFPGAReconfigurationCharging: a pipeline device charges its
// reconfiguration once per kernel change — the first run of a kernel
// pays SetupSeconds, repeats are free, and switching kernels pays again.
// Estimate consults the configured state the same way.
func TestFPGAReconfigurationCharging(t *testing.T) {
	d, err := NewDevice("fpga")
	if err != nil {
		t.Fatal(err)
	}
	filter := Kernel{Name: "filter", Desc: kernelDesc(FilterWork, 4096), HostBytes: 1}
	sortK := Kernel{Name: "sort", Desc: kernelDesc(SortWork, 4096), HostBytes: 1}
	m := MorselStats{Rows: 4096, Selectivity: -1, Runs: 1}

	if est := d.Estimate(filter, m); est.SetupSeconds <= 0 {
		t.Fatalf("unconfigured pipeline must estimate setup, got %+v", est)
	}
	c1, _ := d.Run(filter, m, func() error { return nil })
	if c1.SetupSeconds <= 0 {
		t.Fatalf("first run must pay reconfiguration: %+v", c1)
	}
	if est := d.Estimate(filter, m); est.SetupSeconds != 0 {
		t.Fatalf("configured pipeline must estimate zero setup, got %+v", est)
	}
	c2, _ := d.Run(filter, m, func() error { return nil })
	if c2.SetupSeconds != 0 {
		t.Fatalf("repeat run must not pay reconfiguration: %+v", c2)
	}
	c3, _ := d.Run(sortK, m, func() error { return nil })
	if c3.SetupSeconds <= 0 {
		t.Fatalf("kernel switch must pay reconfiguration: %+v", c3)
	}
}

// kernelDesc builds a descriptor through a throwaway dispatcher config.
func kernelDesc(kind KernelKind, rows int) hw.Kernel {
	p, err := NewPlacer([]string{"cpu"}, "cpu")
	if err != nil {
		panic(err)
	}
	return p.Dispatcher(Dispatch{Kind: kind}).kernel(rows, -1).Desc
}

// TestForcedPlacement: a forced policy sends every morsel to the named
// device; validation rejects a forced device outside the set.
func TestForcedPlacement(t *testing.T) {
	for _, name := range []string{"cpu", "gpu", "fpga"} {
		p, err := NewPlacer([]string{"cpu", "gpu", "fpga"}, name)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Dispatcher(Dispatch{Kind: ProjectWork, Width: 2})
		for i := 0; i < 3; i++ {
			if err := d.Run(1024, func() error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		if got := d.Cost().Devices[name]; got != 3 {
			t.Fatalf("forced %s: morsels %v", name, d.Cost().Devices)
		}
	}
	if _, err := NewPlacer([]string{"cpu"}, "gpu"); err == nil {
		t.Fatal("forcing a device outside the set must error")
	}
	if err := ValidateConfig([]string{"cpu"}, "warp"); err == nil {
		t.Fatal("unknown placement must error")
	}
	if err := ValidateConfig(nil, ""); err != nil {
		t.Fatalf("empty config must validate: %v", err)
	}
}

// TestSelectivityFeedback: RunFilter's observed keep fractions move the
// dispatcher's EWMA, which later kernels are priced with.
func TestSelectivityFeedback(t *testing.T) {
	p, err := NewPlacer([]string{"cpu"}, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Dispatcher(Dispatch{Kind: FilterWork})
	if d.Selectivity() >= 0 {
		t.Fatalf("selectivity must start unobserved, got %v", d.Selectivity())
	}
	if err := d.RunFilter(1000, func() (int, error) { return 100, nil }); err != nil {
		t.Fatal(err)
	}
	if got := d.Selectivity(); got != 0.1 {
		t.Fatalf("first observation must seed the EWMA: %v", got)
	}
	if err := d.RunFilter(1000, func() (int, error) { return 900, nil }); err != nil {
		t.Fatal(err)
	}
	got := d.Selectivity()
	if got <= 0.1 || got >= 0.9 {
		t.Fatalf("EWMA must move between observations: %v", got)
	}
	// The kernel priced for the next morsel reflects the feedback:
	// higher selectivity means more output bytes.
	loSel := d.kernel(1000, 0.1)
	hiSel := d.kernel(1000, got)
	if hiSel.Desc.Bytes <= loSel.Desc.Bytes {
		t.Fatalf("feedback must change the priced kernel: %v vs %v", hiSel.Desc.Bytes, loSel.Desc.Bytes)
	}
}

// TestErrorsPropagate: fn errors surface through Run/RunFilter on both
// nil and live dispatchers.
func TestErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	var nilD *Dispatcher
	if err := nilD.Run(10, func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("nil dispatcher: %v", err)
	}
	p, err := NewPlacer([]string{"cpu"}, "auto")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Dispatcher(Dispatch{Kind: FilterWork})
	if err := d.RunFilter(10, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("live dispatcher: %v", err)
	}
}

// TestForkIndependentState: per-shard forks place on independent device
// state (each shard's FPGA reconfigures once) while charging one shared
// aggregate.
func TestForkIndependentState(t *testing.T) {
	root, err := NewPlacer([]string{"fpga"}, "fpga")
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := root.Fork()
			d := f.Dispatcher(Dispatch{Kind: FilterWork})
			for i := 0; i < 3; i++ {
				if err := d.Run(1024, func() error { return nil }); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	stats := root.Stats()
	if len(stats) != 1 || stats[0].Device != "fpga" {
		t.Fatalf("aggregate: %+v", stats)
	}
	if stats[0].Morsels != shards*3 {
		t.Fatalf("aggregate morsels %d, want %d", stats[0].Morsels, shards*3)
	}
	// Each shard's own FPGA reconfigured exactly once.
	want := shards * 1
	perSetup := stats[0].SetupSeconds
	one, _ := NewDevice("fpga")
	ref, _ := one.Run(Kernel{Name: "filter", Desc: kernelDesc(FilterWork, 1024), HostBytes: 1},
		MorselStats{Rows: 1024, Runs: 1}, func() error { return nil })
	if got := perSetup / ref.SetupSeconds; int(got+0.5) != want {
		t.Fatalf("reconfigurations: %v, want %d (independent per-shard state)", got, want)
	}
}

// TestAutoNeverWorseThanForcedCPU: per-morsel cost-based placement picks
// the minimum estimate, so its modeled total is never above forcing
// everything onto the CPU for the same morsel stream.
func TestAutoNeverWorseThanForcedCPU(t *testing.T) {
	run := func(placement string) float64 {
		p, err := NewPlacer([]string{"cpu", "gpu", "fpga"}, placement)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Dispatcher(Dispatch{Kind: FilterWork, ExpectedRows: 1 << 20})
		for i := 0; i < 1<<20/1024; i++ {
			if err := d.RunFilter(1024, func() (int, error) { return 512, nil }); err != nil {
				t.Fatal(err)
			}
		}
		return ModeledSeconds(p.Stats())
	}
	auto, cpu := run("auto"), run("cpu")
	if auto > cpu {
		t.Fatalf("auto placement modeled %.6gs > cpu-only %.6gs", auto, cpu)
	}
}
