package exec

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/accel"
)

// Device-occupancy throttling: a device admits a bounded number of
// in-flight morsels (a spatial pipeline one, a SIMT device a few
// command streams, the CPU its cores); morsels beyond the cap queue,
// and the queueing shows up in QueueWaits/QueueSeconds — never in
// Seconds, which stays pure compute so placement costs and queue
// pressure remain separable (and schedule-independent assertions
// elsewhere stay valid).

// TestOccupancyPerStyle pins the admission caps the device styles model.
func TestOccupancyPerStyle(t *testing.T) {
	if got := occupancy(accel.Pipeline); got != 1 {
		t.Fatalf("pipeline occupancy = %d, want 1", got)
	}
	if got := occupancy(accel.SIMT); got != 4 {
		t.Fatalf("SIMT occupancy = %d, want 4", got)
	}
	if got := occupancy(accel.SIMD); got != runtime.NumCPU() {
		t.Fatalf("SIMD occupancy = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

// TestDeviceOccupancyQueues: with the FPGA's single pipeline slot held
// by an in-flight morsel, a concurrent morsel must record a queue wait
// — charged to QueueSeconds, not folded into its compute Seconds. The
// exact interleaving is schedule-dependent, so the contention attempt
// retries rather than asserting a particular timing.
func TestDeviceOccupancyQueues(t *testing.T) {
	dev, err := NewDevice("fpga")
	if err != nil {
		t.Fatal(err)
	}
	k := Kernel{Name: "filter", Desc: kernelDesc(FilterWork, 4096), HostBytes: 1}
	m := MorselStats{Rows: 4096, Selectivity: -1, Runs: 1}

	// Uncontended runs never queue; the second run reuses the loaded
	// bitstream, giving the pure-compute baseline.
	warm, err := dev.Run(k, m, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if warm.QueueWaits != 0 || warm.QueueSeconds != 0 {
		t.Fatalf("uncontended morsel queued: %+v", warm)
	}
	base, err := dev.Run(k, m, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}

	for attempt := 0; attempt < 50; attempt++ {
		entered := make(chan struct{})
		release := make(chan struct{})
		firstDone := make(chan Cost, 1)
		go func() {
			c, _ := dev.Run(k, m, func() error { close(entered); <-release; return nil })
			firstDone <- c
		}()
		<-entered // the pipeline slot is now held

		secondDone := make(chan Cost, 1)
		go func() {
			c, _ := dev.Run(k, m, func() error { return nil })
			secondDone <- c
		}()
		// Let the second morsel reach the occupancy gate while the slot
		// is held, then release the first.
		time.Sleep(time.Millisecond)
		close(release)
		first := <-firstDone
		second := <-secondDone

		if first.QueueWaits != 0 {
			t.Fatalf("slot holder queued behind itself: %+v", first)
		}
		if second.QueueWaits == 0 {
			continue // second won the race to the slot; try again
		}
		if second.QueueSeconds <= 0 {
			t.Fatalf("queued morsel priced no wait: %+v", second)
		}
		if second.Seconds != base.Seconds {
			t.Fatalf("queue wait leaked into compute Seconds: %v vs baseline %v", second.Seconds, base.Seconds)
		}
		return
	}
	t.Fatal("second morsel never observed a busy slot in 50 attempts")
}

// TestDispatcherAggregatesQueueing: queue waits charged on a device
// surface in both the operator's OpCost and the placer's per-device
// stats, and the device summary line mentions them.
func TestDispatcherAggregatesQueueing(t *testing.T) {
	p, err := NewPlacer([]string{"fpga"}, "fpga")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Dispatcher(Dispatch{Kind: FilterWork})
	hold := make(chan struct{})
	entered := make(chan struct{})
	go func() {
		d.Run(4096, func() error { close(entered); <-hold; return nil })
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		d.Run(4096, func() error { return nil })
		close(done)
	}()
	time.Sleep(time.Millisecond)
	close(hold)
	<-done

	cost := d.Cost()
	if cost.Morsels != 2 {
		t.Fatalf("dispatched %d morsels", cost.Morsels)
	}
	if cost.QueueWaits > 0 {
		// The racy branch: only assert consistency when contention
		// actually happened (it nearly always does).
		if cost.QueueSeconds <= 0 {
			t.Fatalf("queue waits without queue seconds: %+v", cost)
		}
		st := p.Stats()
		if len(st) != 1 || st[0].QueueWaits != cost.QueueWaits {
			t.Fatalf("placer stats dropped queueing: %+v", st)
		}
	}
}
