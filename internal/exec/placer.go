package exec

import (
	"fmt"
	"math"
	"strings"
)

// Policy decides which device one morsel runs on. Policies observe the
// per-device estimates (already amortizing one-off setup over the
// morsel's expected run count) and must return one of the offered
// devices.
type Policy interface {
	Name() string
	// Pick chooses a device for kernel k over morsel m. devs is never
	// empty.
	Pick(devs []Device, k Kernel, m MorselStats) Device
}

// Placements lists the placement-policy names PolicyByName accepts.
var Placements = []string{"auto", "cpu", "gpu", "fpga"}

// PolicyByName resolves a placement name: "auto" (or "") is cost-based
// per-morsel placement; a device name forces every morsel onto that
// device.
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "", "auto":
		return costBased{}, nil
	case "cpu", "gpu", "fpga":
		return forced(strings.ToLower(name)), nil
	default:
		return nil, fmt.Errorf("exec: unknown placement %q (have %s)", name, strings.Join(Placements, ", "))
	}
}

// costBased picks the device whose estimate minimizes per-run total
// time, with setup amortized over the morsel's expected run count —
// Recommendation 11's dynamic placement at morsel granularity. Ties (and
// the empty estimate) fall to the earliest device in catalog order, so
// the CPU wins when offload buys nothing.
type costBased struct{}

// Name implements Policy.
func (costBased) Name() string { return "auto" }

// Pick implements Policy.
func (costBased) Pick(devs []Device, k Kernel, m MorselStats) Device {
	runs := m.Runs
	if runs < 1 {
		runs = 1
	}
	best := devs[0]
	bestS := math.Inf(1)
	for _, d := range devs {
		if s := d.Estimate(k, m).TotalSeconds(runs); s < bestS {
			best, bestS = d, s
		}
	}
	return best
}

// forced places every morsel on one named device (the ablation
// comparator: "cpu" replays the homogeneous engine's cost, "gpu"/"fpga"
// model an engine hard-wired to its accelerator).
type forced string

// Name implements Policy.
func (f forced) Name() string { return string(f) }

// Pick implements Policy.
func (f forced) Pick(devs []Device, k Kernel, m MorselStats) Device {
	for _, d := range devs {
		if d.Name() == string(f) {
			return d
		}
	}
	return devs[0] // validated at Placer construction; defensive only
}

// Placer owns one execution's device set and placement policy and
// aggregates the per-device modeled costs its dispatchers charge. A
// query builds one Placer; distributed executions Fork one per shard so
// every simulated worker host places independently on its own device
// state while charging the same query-level aggregate.
//
// A Placer is safe for concurrent use (morsel-parallel partitions share
// its dispatchers).
type Placer struct {
	devs []Device
	pol  Policy
	agg  *aggStats
}

// NewPlacer builds a placer over fresh devices. names must be non-empty
// and placement must resolve; a forced placement must name one of the
// devices.
func NewPlacer(names []string, placement string) (*Placer, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("exec: placer needs at least one device")
	}
	devs, err := NewDevices(names)
	if err != nil {
		return nil, err
	}
	pol, err := PolicyByName(placement)
	if err != nil {
		return nil, err
	}
	if f, ok := pol.(forced); ok {
		found := false
		for _, d := range devs {
			if d.Name() == string(f) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("exec: placement %q is not in the device set %v", placement, names)
		}
	}
	return &Placer{devs: devs, pol: pol, agg: &aggStats{}}, nil
}

// ValidateConfig checks a (devices, placement) pair without keeping the
// placer — the construction-time validation hook for configuration
// layers.
func ValidateConfig(names []string, placement string) error {
	if len(names) == 0 {
		// No devices = homogeneous engine; the placement is ignored but
		// still must parse so a typo surfaces here, not silently.
		if placement == "" {
			return nil
		}
		_, err := PolicyByName(placement)
		return err
	}
	_, err := NewPlacer(names, placement)
	return err
}

// Fork returns a placer with the same device names and policy but fresh
// device state (an FPGA on one shard reconfigures independently of its
// peers), charging into the same aggregate as the receiver.
func (p *Placer) Fork() *Placer {
	devs, err := NewDevices(p.DeviceNames())
	if err != nil {
		panic(err) // names were validated at construction
	}
	return &Placer{devs: devs, pol: p.pol, agg: p.agg}
}

// Policy returns the placement policy's name.
func (p *Placer) Policy() string { return p.pol.Name() }

// DeviceNames returns the device set's names in catalog order.
func (p *Placer) DeviceNames() []string {
	out := make([]string, len(p.devs))
	for i, d := range p.devs {
		out[i] = d.Name()
	}
	return out
}

// Stats snapshots the per-device aggregate over every dispatcher of this
// placer and its forks, sorted by device name.
func (p *Placer) Stats() []DeviceStats { return p.agg.snapshot() }

// String renders the placer's configuration for plan explanations.
func (p *Placer) String() string {
	return fmt.Sprintf("devices [%s], placement %s", strings.Join(p.DeviceNames(), " "), p.Policy())
}
