// Package exec is the heterogeneous operator-execution seam: the device
// abstraction that lets the relational batch engine place each morsel on
// whichever device class — SIMD CPU, SIMT GPU, spatial FPGA pipeline —
// a cost model says is cheapest (Section IV.C.3's dynamic placement,
// HyPer-style morsel granularity).
//
// The layering mirrors the fabric control plane of internal/netsim: the
// data plane (the CPU reference kernels in internal/kernels) always
// computes the actual result, so every placement is semantically
// identical and output stays row-for-row equal across device sets; a
// Device only differs in the *modeled* cost it charges — roofline
// compute/bandwidth time from the internal/hw device models plus the
// style's offload overheads (PCIe transfer and kernel launch for SIMT,
// bitstream reconfiguration for pipelines). A nil placer (no device set
// configured) is the fixed homogeneous engine, bit-identical with the
// pre-device code path.
package exec

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/accel"
	"repro/internal/hw"
)

// Kernel identifies one operator kernel at one morsel size: the roofline
// terms the device models price, plus the control-flow shape (branchy
// filters derate wide execution styles) and the bytes that would cross
// the host boundary on an offload device.
type Kernel struct {
	// Name is the kernel identity ("filter", "project", "sort",
	// "aggregate"); spatial devices reconfigure when it changes.
	Name string
	// Branchy marks divergent control flow (filter-shaped kernels).
	Branchy bool
	// Desc is the roofline descriptor at the morsel size.
	Desc hw.Kernel
	// HostBytes is the host<->device traffic an offload device would move
	// to run this kernel (morsel in + result out).
	HostBytes float64
}

// MorselStats is what a placement decision knows about one morsel.
type MorselStats struct {
	// Rows is the morsel's row count.
	Rows int
	// Selectivity is the observed keep fraction feedback for filter
	// kernels; negative means unobserved (cost models use their planner
	// default).
	Selectivity float64
	// Runs estimates how many morsels of this kernel the operator will
	// dispatch in total (>= 1): one-off device state (FPGA
	// reconfiguration) amortizes over it.
	Runs int
}

// Cost is the modeled cost actually charged for one morsel execution.
// Seconds includes every overhead component listed below it except the
// queueing terms: QueueWaits counts dispatches that found every device
// slot busy, and QueueSeconds estimates the time spent waiting in the
// device queue. Queueing is kept out of Seconds because it is a
// schedule-dependent concurrency artifact, not per-morsel device work —
// folding it in would make modeled device time vary run to run.
type Cost struct {
	Seconds         float64
	TransferSeconds float64
	LaunchSeconds   float64
	SetupSeconds    float64
	EnergyJ         float64
	QueueWaits      int
	QueueSeconds    float64
}

// Device is one placement target. All devices are semantically identical
// — Run executes the engine's reference CPU implementation — and differ
// only in the modeled cost they estimate and charge, exactly like
// accel.Backend prices the shared reference interpreter.
type Device interface {
	// Name identifies the device ("cpu", "gpu", "fpga").
	Name() string
	// Style is the execution idiom the cost model prices.
	Style() accel.Style
	// Estimate prices one execution of k over m without running it,
	// consulting device state (an already-configured pipeline reports
	// zero SetupSeconds).
	Estimate(k Kernel, m MorselStats) accel.Estimate
	// Run executes fn — the reference implementation, shared by every
	// device — updates device state, and returns the modeled cost
	// charged, including any reconfiguration this run triggered.
	Run(k Kernel, m MorselStats, fn func() error) (Cost, error)
}

// DeviceNames lists the devices NewDevice accepts, in catalog order.
var DeviceNames = []string{"cpu", "gpu", "fpga"}

// NewDevice builds a fresh device model by catalog name. Fresh means
// fresh state: two calls return independent devices (a pipeline device
// tracks which kernel its bitstream currently implements).
func NewDevice(name string) (Device, error) {
	var d *modelDevice
	switch strings.ToLower(name) {
	case "cpu":
		d = &modelDevice{name: "cpu", b: accel.NewCPU()}
	case "gpu":
		d = &modelDevice{name: "gpu", b: accel.NewGPU()}
	case "fpga":
		d = &modelDevice{name: "fpga", b: accel.NewFPGA()}
	default:
		return nil, fmt.Errorf("exec: unknown device %q (have %s)", name, strings.Join(DeviceNames, ", "))
	}
	d.slots = make(chan struct{}, occupancy(d.b.Style))
	return d, nil
}

// occupancy is how many morsels a device admits concurrently: a spatial
// pipeline runs one kernel at a time, a SIMT offload device queues
// behind a few command streams, and the SIMD CPU matches the host's
// cores. Morsels beyond the cap queue (counted in Cost.QueueWaits)
// instead of modeling unbounded accelerator parallelism.
func occupancy(st accel.Style) int {
	switch st {
	case accel.Pipeline:
		return 1
	case accel.SIMT:
		return 4
	default:
		return runtime.NumCPU()
	}
}

// NewDevices builds one fresh device per name, rejecting duplicates.
func NewDevices(names []string) ([]Device, error) {
	out := make([]Device, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		d, err := NewDevice(n)
		if err != nil {
			return nil, err
		}
		if seen[d.Name()] {
			return nil, fmt.Errorf("exec: duplicate device %q", d.Name())
		}
		seen[d.Name()] = true
		out = append(out, d)
	}
	return out, nil
}

// modelDevice adapts an accel.Backend (hw device model + execution
// style) to the Device interface. Pipeline backends carry the one piece
// of device state the placement loop must model: which kernel the
// fabric is currently configured for.
type modelDevice struct {
	name  string
	b     accel.Backend
	slots chan struct{} // occupancy cap; nil = unthrottled

	mu         sync.Mutex
	configured string // Pipeline style: kernel the bitstream implements
}

// Name implements Device.
func (d *modelDevice) Name() string { return d.name }

// Style implements Device.
func (d *modelDevice) Style() accel.Style { return d.b.Style }

// Estimate implements Device.
func (d *modelDevice) Estimate(k Kernel, m MorselStats) accel.Estimate {
	est := d.b.EstimateKernel(k.Desc, k.Branchy, k.HostBytes)
	if d.b.Style == accel.Pipeline {
		d.mu.Lock()
		if d.configured == k.Name {
			est.SetupSeconds = 0 // bitstream already loaded
		}
		d.mu.Unlock()
	}
	return est
}

// Run implements Device.
func (d *modelDevice) Run(k Kernel, m MorselStats, fn func() error) (Cost, error) {
	est := d.b.EstimateKernel(k.Desc, k.Branchy, k.HostBytes)
	cost := Cost{
		Seconds:         est.Seconds,
		TransferSeconds: est.TransferSeconds,
		LaunchSeconds:   est.LaunchSeconds,
		EnergyJ:         est.EnergyJ,
	}
	if d.slots != nil {
		select {
		case d.slots <- struct{}{}:
		default:
			// Every slot busy: this morsel queues behind roughly one
			// in-flight morsel of the same shape.
			cost.QueueWaits = 1
			cost.QueueSeconds = est.Seconds
			d.slots <- struct{}{}
		}
		defer func() { <-d.slots }()
	}
	if d.b.Style == accel.Pipeline {
		d.mu.Lock()
		if d.configured != k.Name {
			d.configured = k.Name
			cost.SetupSeconds = est.SetupSeconds
			cost.Seconds += est.SetupSeconds
			// The bitstream load draws idle power for its duration.
			cost.EnergyJ += est.SetupSeconds * d.b.Device.Power(0)
		}
		d.mu.Unlock()
	}
	err := fn()
	return cost, err
}

// DeviceStats is one device's aggregate over an execution: how many
// morsels (and rows) the placement policy sent to it and the modeled
// time/energy they cost, with the offload overhead components broken
// out. It is the per-device line of sql.Result.Devices.
type DeviceStats struct {
	Device          string
	Style           string
	Morsels         int
	Rows            int64
	Seconds         float64
	TransferSeconds float64
	LaunchSeconds   float64
	SetupSeconds    float64
	EnergyJ         float64
	// QueueWaits counts morsels that found every device slot busy and
	// queued; QueueSeconds is their estimated wait. Schedule-dependent:
	// do not assert exact values in tests.
	QueueWaits   int
	QueueSeconds float64
}

// String renders one summary line.
func (s DeviceStats) String() string {
	line := fmt.Sprintf("%s(%s): %d morsels, %d rows, %.3gs modeled (xfer %.3gs, launch %.3gs, setup %.3gs), %.3g J",
		s.Device, s.Style, s.Morsels, s.Rows, s.Seconds, s.TransferSeconds, s.LaunchSeconds, s.SetupSeconds, s.EnergyJ)
	if s.QueueWaits > 0 {
		line += fmt.Sprintf(", %d queued (%.3gs wait)", s.QueueWaits, s.QueueSeconds)
	}
	return line
}

// aggStats is the race-safe per-device aggregate sink an execution's
// placers (the query placer and its per-shard forks) share.
type aggStats struct {
	mu    sync.Mutex
	byDev map[string]*DeviceStats
}

func (a *aggStats) charge(dev Device, rows int, c Cost) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.byDev == nil {
		a.byDev = map[string]*DeviceStats{}
	}
	st := a.byDev[dev.Name()]
	if st == nil {
		st = &DeviceStats{Device: dev.Name(), Style: dev.Style().String()}
		a.byDev[dev.Name()] = st
	}
	st.Morsels++
	st.Rows += int64(rows)
	st.Seconds += c.Seconds
	st.TransferSeconds += c.TransferSeconds
	st.LaunchSeconds += c.LaunchSeconds
	st.SetupSeconds += c.SetupSeconds
	st.EnergyJ += c.EnergyJ
	st.QueueWaits += c.QueueWaits
	st.QueueSeconds += c.QueueSeconds
}

func (a *aggStats) snapshot() []DeviceStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]DeviceStats, 0, len(a.byDev))
	for _, st := range a.byDev {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// ModeledSeconds sums the modeled execution time across a device report.
func ModeledSeconds(stats []DeviceStats) float64 {
	total := 0.0
	for _, s := range stats {
		total += s.Seconds
	}
	return total
}
