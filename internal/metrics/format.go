package metrics

import "fmt"

// FormatSeconds renders a duration in the most readable sub-unit — the
// companion of FormatBytes for the network accounting the distributed
// SQL engine reports.
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3f µs", s*1e6)
	default:
		return fmt.Sprintf("%.0f ns", s*1e9)
	}
}
