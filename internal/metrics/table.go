package metrics

import (
	"fmt"
	"strings"
)

// Table is a plain-text table builder used by every experiment harness so
// that reproduced "paper tables" render uniformly.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v unless it is a float64, which renders with %.4g.
func (t *Table) AddRowf(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case string:
			out[i] = v
		default:
			out[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(out...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence — the text analogue of a figure
// line. Harnesses reproducing paper figures emit one Series per curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Render returns "name: (x, y) ..." as text, one point per line.
func (s *Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series %s\n", s.Name)
	for i := range s.X {
		fmt.Fprintf(&b, "  x=%.6g y=%.6g\n", s.X[i], s.Y[i])
	}
	return b.String()
}

// Figure groups series under a caption, mirroring a paper figure.
type Figure struct {
	Caption string
	Series  []*Series
}

// NewFigure returns an empty figure.
func NewFigure(caption string) *Figure { return &Figure{Caption: caption} }

// Line adds and returns a named series.
func (f *Figure) Line(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render emits the caption and every series as text.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure: %s\n", f.Caption)
	for _, s := range f.Series {
		b.WriteString(s.Render())
	}
	return b.String()
}

// FormatBytes renders a byte count using binary units (KiB, MiB, ...).
func FormatBytes(n float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB"}
	i := 0
	for n >= 1024 && i < len(units)-1 {
		n /= 1024
		i++
	}
	return fmt.Sprintf("%.4g%s", n, units[i])
}

// FormatSI renders a value with SI magnitude suffixes (k, M, G, T).
func FormatSI(n float64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= 1e12:
		return fmt.Sprintf("%.4gT", n/1e12)
	case abs >= 1e9:
		return fmt.Sprintf("%.4gG", n/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.4gM", n/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.4gk", n/1e3)
	default:
		return fmt.Sprintf("%.4g", n)
	}
}
