// Package metrics provides the statistics and reporting primitives shared
// by every experiment harness in the repository: exact-quantile samples,
// streaming moments, time-weighted averages, and plain-text table/series
// renderers so all harness output is uniform.
package metrics

import (
	"math"
	"sort"
)

// Stream accumulates streaming moments with Welford's algorithm. The zero
// value is ready to use.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.n }

// Sum returns the running total.
func (s *Stream) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 with no observations).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Stream) Max() float64 { return s.max }

// Sample retains every observation and answers exact quantiles. Use it
// where tails matter (latency experiments); use Stream when only moments
// are needed.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a sample with capacity hint n.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	t := 0.0
	for _, x := range s.xs {
		d := x - m
		t += d * d
	}
	return math.Sqrt(t / float64(n-1))
}

func (s *Sample) sortIfNeeded() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the exact q-quantile (0 <= q <= 1) with linear
// interpolation between order statistics. It returns 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q <= 0 {
		s.sortIfNeeded()
		return s.xs[0]
	}
	if q >= 1 {
		s.sortIfNeeded()
		return s.xs[len(s.xs)-1]
	}
	s.sortIfNeeded()
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// P50, P95, P99 and P999 are convenience accessors for common tail
// quantiles.
func (s *Sample) P50() float64  { return s.Quantile(0.50) }
func (s *Sample) P95() float64  { return s.Quantile(0.95) }
func (s *Sample) P99() float64  { return s.Quantile(0.99) }
func (s *Sample) P999() float64 { return s.Quantile(0.999) }

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// TimeWeighted tracks the time-average of a piecewise-constant signal,
// e.g. queue length or link utilization over virtual time.
type TimeWeighted struct {
	lastT   float64
	lastV   float64
	area    float64
	started bool
	start   float64
	max     float64
}

// Observe records that the signal takes value v from time t onward.
// Calls must have non-decreasing t.
func (w *TimeWeighted) Observe(t, v float64) {
	if !w.started {
		w.started = true
		w.start = t
	} else {
		w.area += w.lastV * (t - w.lastT)
	}
	if v > w.max {
		w.max = v
	}
	w.lastT, w.lastV = t, v
}

// MeanUntil returns the time-average of the signal on [start, t].
func (w *TimeWeighted) MeanUntil(t float64) float64 {
	if !w.started || t <= w.start {
		return 0
	}
	area := w.area + w.lastV*(t-w.lastT)
	return area / (t - w.start)
}

// Max returns the maximum observed value.
func (w *TimeWeighted) Max() float64 { return w.max }

// Counter is a monotonically increasing event counter with a convenience
// rate helper.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Addn adds n.
func (c *Counter) Addn(n uint64) { c.n += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Rate returns counts per unit over elapsed (0 if elapsed <= 0).
func (c *Counter) Rate(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed
}
