package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// population std of this classic set is 2; sample std is sqrt(32/7)
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Std() != 0 || s.Var() != 0 {
		t.Fatal("empty stream should report zeros")
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.P50(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v, want 50.5", got)
	}
	if got := s.P99(); math.Abs(got-99.01) > 0.5 {
		t.Fatalf("p99 = %v, want ~99", got)
	}
}

func TestSampleQuantileMonotone(t *testing.T) {
	err := quick.Check(func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		a := math.Abs(math.Mod(qa, 1))
		b := math.Abs(math.Mod(qb, 1))
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	s := NewSample(0)
	s.Add(5)
	_ = s.P50()
	s.Add(1)
	if s.Min() != 1 {
		t.Fatal("sample did not re-sort after Add")
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	w.Observe(0, 0)  // value 0 on [0, 10)
	w.Observe(10, 4) // value 4 on [10, 20)
	if got := w.MeanUntil(20); math.Abs(got-2) > 1e-12 {
		t.Fatalf("time-weighted mean = %v, want 2", got)
	}
	if w.Max() != 4 {
		t.Fatalf("max = %v", w.Max())
	}
}

func TestTimeWeightedBeforeStart(t *testing.T) {
	var w TimeWeighted
	if w.MeanUntil(5) != 0 {
		t.Fatal("unstarted signal should average 0")
	}
	w.Observe(3, 7)
	if w.MeanUntil(3) != 0 {
		t.Fatal("zero-width window should average 0")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(9)
	if c.Value() != 10 {
		t.Fatalf("value = %d", c.Value())
	}
	if got := c.Rate(5); got != 2 {
		t.Fatalf("rate = %v", got)
	}
	if c.Rate(0) != 0 {
		t.Fatal("rate over zero elapsed should be 0")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 2.5)
	out := tab.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("render produced %d lines:\n%s", len(lines), out)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only-one")
	out := tab.Render()
	if !strings.Contains(out, "only-one") {
		t.Fatalf("row dropped:\n%s", out)
	}
}

func TestSeriesAndFigure(t *testing.T) {
	f := NewFigure("test fig")
	s := f.Line("curve")
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	out := f.Render()
	if !strings.Contains(out, "test fig") || !strings.Contains(out, "curve") || !strings.Contains(out, "x=3") {
		t.Fatalf("figure render missing content:\n%s", out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[float64]string{
		512:                "512B",
		2048:               "2KiB",
		3 * 1024 * 1024:    "3MiB",
		1024 * 1024 * 1024: "1GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		999:     "999",
		1500:    "1.5k",
		2e6:     "2M",
		3.5e9:   "3.5G",
		1.25e12: "1.25T",
	}
	for in, want := range cases {
		if got := FormatSI(in); got != want {
			t.Errorf("FormatSI(%v) = %q, want %q", in, got, want)
		}
	}
}
