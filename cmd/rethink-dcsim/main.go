// Command rethink-dcsim runs datacenter network scenarios: a traffic
// pattern over a chosen topology and fabric generation, with optional SDN
// control-plane accounting and link-failure injection.
//
// Usage:
//
//	rethink-dcsim -topo leafspine -fabric 100 -pattern alltoall -bytes 1e8
//	rethink-dcsim -topo fattree -k 8 -pattern incast -sdn -fail 3
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sdn"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rethink-dcsim: ")
	topoName := flag.String("topo", "leafspine", "topology: leafspine|fattree|torus")
	k := flag.Int("k", 4, "fat-tree arity (fattree only)")
	leaves := flag.Int("leaves", 4, "leaf switches (leafspine only)")
	spines := flag.Int("spines", 2, "spine switches (leafspine only)")
	hostsPerLeaf := flag.Int("hosts-per-leaf", 4, "hosts per leaf (leafspine only)")
	fabric := flag.Float64("fabric", 40, "fabric speed in Gbps (10|40|100|400)")
	pattern := flag.String("pattern", "alltoall", "traffic: alltoall|incast|pairs")
	bytes := flag.Float64("bytes", 1e8, "bytes per flow")
	useSDN := flag.Bool("sdn", false, "route through an SDN controller and report control-plane stats")
	fail := flag.Int("fail", -1, "fail this link ID after routing (requires -sdn)")
	flag.Parse()

	var net *topo.Network
	switch *topoName {
	case "leafspine":
		net = topo.LeafSpine(topo.LeafSpineSpec{
			Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hostsPerLeaf,
			HostSpeed: topo.Gen10, FabricSpeed: topo.GbE(*fabric),
		})
	case "fattree":
		net = topo.FatTree(*k, topo.GbE(*fabric))
	case "torus":
		net = topo.Torus2D(4, 4, topo.GbE(*fabric))
	default:
		log.Fatalf("unknown topology %q", *topoName)
	}
	hosts := net.Hosts()
	fmt.Printf("topology: %s — %d hosts, %d switches, %d links, fabric %.0f Gbps\n",
		*topoName, len(hosts), len(net.Switches()), len(net.Links), *fabric)

	var pairs [][2]int
	switch *pattern {
	case "alltoall":
		for _, s := range hosts {
			for _, d := range hosts {
				if s != d {
					pairs = append(pairs, [2]int{s, d})
				}
			}
		}
	case "incast":
		sink := hosts[0]
		for _, s := range hosts[1:] {
			pairs = append(pairs, [2]int{s, sink})
		}
	case "pairs":
		for i := 0; i+1 < len(hosts); i += 2 {
			pairs = append(pairs, [2]int{hosts[i], hosts[i+1]})
		}
	default:
		log.Fatalf("unknown pattern %q", *pattern)
	}

	if *useSDN {
		c := sdn.NewController(net, sdn.Reactive, 0)
		worst := 0.0
		for _, p := range pairs {
			lat, err := c.FlowSetupUS(p[0], p[1])
			if err != nil {
				log.Fatal(err)
			}
			if lat > worst {
				worst = lat
			}
		}
		fmt.Printf("sdn: %d rules installed, %d control ops, worst flow-setup %.0f µs\n",
			c.TotalRules(), c.ControlOps, worst)
		if *fail >= 0 {
			rerouted, err := c.FailLink(*fail)
			if err != nil {
				log.Fatalf("link %d failure: %v", *fail, err)
			}
			fmt.Printf("sdn: link %d failed, %d flows rerouted\n", *fail, rerouted)
		}
	}

	s := netsim.NewSimulator(net)
	for _, p := range pairs {
		if _, err := s.StartFlow(p[0], p[1], *bytes); err != nil {
			log.Fatal(err)
		}
	}
	s.Run()
	fct := s.FCTs()
	t := metrics.NewTable(fmt.Sprintf("%d flows × %s", fct.N(), metrics.FormatBytes(*bytes)),
		"metric", "seconds")
	t.AddRowf("mean FCT", fct.Mean())
	t.AddRowf("p50", fct.P50())
	t.AddRowf("p99", fct.P99())
	t.AddRowf("max", fct.Max())
	fmt.Print(t.Render())
	fmt.Printf("mean link utilization: %.3f\n", s.MeanLinkUtilization())
}
