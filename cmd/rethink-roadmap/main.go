// Command rethink-roadmap synthesizes the stakeholder corpus, re-derives
// the paper's four key findings, scores the twelve recommendations and
// prints the complete roadmap document (including Table 1 and Figure 1).
//
// Usage:
//
//	rethink-roadmap [-seed N] [-year Y] [-section all|table1|figure1|findings|recommendations]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/survey"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rethink-roadmap: ")
	seed := flag.Uint64("seed", 2016, "corpus synthesis seed")
	year := flag.Int("year", 2016, "roadmap base year")
	section := flag.String("section", "all", "what to print: all|table1|figure1|findings|recommendations|timeline")
	flag.Parse()

	switch *section {
	case "table1":
		fmt.Print(core.Table1().Render())
		return
	case "figure1":
		fmt.Print(core.Figure1().Render())
		return
	}

	corpus, err := survey.Synthesize(survey.DefaultSpec(*seed))
	if err != nil {
		log.Fatal(err)
	}
	roadmap, err := core.BuildRoadmap(corpus, *year)
	if err != nil {
		log.Fatal(err)
	}
	switch *section {
	case "all":
		fmt.Print(roadmap.Render())
	case "findings":
		for _, f := range roadmap.Findings {
			status := "SUPPORTED"
			if !f.Holds {
				status = "NOT SUPPORTED"
			}
			fmt.Printf("(%d) %s\n    evidence: %s [%s]\n", f.ID, f.Statement, f.Detail, status)
		}
	case "recommendations":
		fmt.Print(roadmap.Table().Render())
	case "timeline":
		fmt.Print(core.AdoptionTimeline(*year-1, *year+9).Render())
	default:
		fmt.Fprintf(os.Stderr, "unknown section %q\n", *section)
		os.Exit(2)
	}
}
