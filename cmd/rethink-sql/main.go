// Command rethink-sql runs SQL queries against the synthetic star schema
// (sales × customers) on the internal relational engine.
//
// Queries run on the morsel-parallel batch engine by default; -serial
// selects the volcano row-at-a-time engine for comparison, and -dist
// executes shard-parallel across a simulated datacenter fabric, printing
// the simulated network cost (bytes shuffled, flow time, link
// utilization) after each result.
//
// Usage:
//
//	rethink-sql -rows 50000 "SELECT region, COUNT(*) FROM sales GROUP BY region"
//	rethink-sql -explain "SELECT ... "
//	rethink-sql -serial "SELECT ... "
//	rethink-sql -dist -shards 8 -topo fattree "SELECT ... "
//	rethink-sql            # runs a demo query set
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/relational"
	"repro/internal/sql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rethink-sql: ")
	rows := flag.Int("rows", 20000, "sales fact rows")
	customers := flag.Int("customers", 500, "customer dimension rows")
	seed := flag.Uint64("seed", 42, "data generation seed")
	explain := flag.Bool("explain", false, "print the plan instead of executing")
	serial := flag.Bool("serial", false, "run on the row-at-a-time engine instead of the batch engine")
	workers := flag.Int("workers", 0, "batch engine workers per host (0 = NumCPU)")
	distMode := flag.Bool("dist", false, "execute shard-parallel over a simulated datacenter fabric")
	shards := flag.Int("shards", 4, "worker hosts in distributed mode")
	topology := flag.String("topo", "leafspine", "distributed fabric: leafspine, single, fattree, torus")
	distJoin := flag.String("dist-join", "auto", "distributed join movement: auto, broadcast, repartition")
	hashShard := flag.Bool("hash-shard", false, "hash-partition tables instead of range partitioning")
	flag.Parse()

	db := sql.DemoDB(*seed, *rows, *customers)
	db.Opt.Parallel = !*serial
	db.Opt.Workers = *workers
	db.Opt.Distributed = *distMode
	db.Opt.Shards = *shards
	db.Opt.Topology = *topology
	db.Opt.DistJoin = *distJoin
	db.Opt.ShardHash = *hashShard
	queries := flag.Args()
	if len(queries) == 0 {
		queries = []string{
			"SELECT region, COUNT(*) AS orders, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC",
			"SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC",
			"SELECT product, MAX(price) AS top_price FROM sales WHERE year >= 2014 GROUP BY product ORDER BY top_price DESC LIMIT 5",
		}
	}
	for _, q := range queries {
		fmt.Printf("sql> %s\n", q)
		plan, err := db.Plan(q)
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			fmt.Println(plan.Explain())
			fmt.Println()
			continue
		}
		res, err := relational.Collect(plan.Root, "result")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(renderRelation(res))
		if stats := plan.NetStats(); stats != nil {
			fmt.Println(stats.Summary())
			fmt.Printf("  (%s over the fabric in %s)\n",
				metrics.FormatBytes(stats.BytesShuffled), metrics.FormatSeconds(stats.NetSeconds))
		}
		fmt.Println()
	}
}

func renderRelation(rel *relational.Relation) string {
	headers := make([]string, len(rel.Schema))
	for i, c := range rel.Schema {
		headers[i] = c.Name
	}
	t := metrics.NewTable(fmt.Sprintf("%d rows", rel.Len()), headers...)
	for _, row := range rel.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.AddRow(cells...)
	}
	return t.Render()
}
