// Command rethink-sql runs SQL queries against the synthetic star schema
// (sales × customers) on the internal relational engine, through the
// Engine/Session API.
//
// Queries run on the morsel-parallel batch engine by default; -serial
// selects the volcano row-at-a-time engine for comparison, and -dist
// executes shard-parallel across a simulated datacenter fabric, printing
// the simulated network cost (bytes shuffled, flow time, link
// utilization) after each result. With -concurrency N the query list is
// executed by N parallel sessions against the engine's one shared
// fabric, and the per-query network times show the contention; an
// aggregate fabric report (admission rounds, peak coexisting queries and
// flows, hot-link utilization, per-class bytes) closes the run.
//
// QoS: -priority and -weight give the first concurrent session a QoS
// class and a weighted-max-min scheduling weight (its peers stay
// best-effort at weight 1), demonstrating that a weighted session's
// network time degrades less under the same contention; -sdn plugs a
// fabric controller policy (baseline, reroute, priority,
// reroute+priority) into the engine's shared fabric.
//
// Heterogeneous execution: -devices cpu,gpu,fpga gives the batch engine
// a modeled device set and -placement picks the morsel placement policy
// (auto = cost-based per morsel; cpu/gpu/fpga force every morsel onto
// one device). Each result then prints the per-device morsel counts and
// modeled seconds/energy, with offload transfer/launch/reconfiguration
// overheads broken out; rows are identical across placements.
//
// Pipelined execution: -pipeline-chunk N splits every distributed
// movement phase (broadcast, shuffle, gather) into N-row chunks whose
// fabric flows overlap the receiving side's compute — hash builds fill,
// partial aggregates fold and the coordinator merge advances while the
// next chunk is in flight. Results are identical at every chunk size;
// the per-query network report gains measured chunk-compute and overlap
// lines plus the effective pipelined wall time.
//
// Out-of-core execution: -mem-budget caps the bytes of operator state
// (hash-join build tables, aggregate maps, sort runs) a query may hold
// resident; overflow grace-partitions or runs to the -spill-tier (nvm,
// ssd, disk) and each result prints the spill report — partitions
// evicted, bytes moved, modeled tier write/read time and energy. Rows
// are identical at every budget.
//
// Streaming execution: -stream N feeds N synthetic events into a
// growing relation through the append path while a continuous query
// (the query argument, or a default per-key aggregate) runs against it
// — each event-time window prints as the watermark emits it, computed
// incrementally from per-pane partial aggregates, and the closing
// report shows late/dropped accounting, window freshness quantiles and
// (with -dist) the fabric bytes billed to the ingest QoS class.
//
// JSON output: -json renders each result as one canonical wire-format
// document per line — the same encoding (internal/serve/wire) the
// rethinkd daemon serves and rethink-load reports, so downstream
// tooling parses one format regardless of which surface produced it.
//
// Usage:
//
//	rethink-sql -rows 50000 "SELECT region, COUNT(*) FROM sales GROUP BY region"
//	rethink-sql -json -dist "SELECT ... "           # wire-format JSON per result
//	rethink-sql -explain "SELECT ... "
//	rethink-sql -serial "SELECT ... "
//	rethink-sql -devices cpu,gpu,fpga -placement auto "SELECT ... "
//	rethink-sql -dist -devices cpu,gpu,fpga "SELECT ... "  # per-shard placement
//	rethink-sql -dist -shards 8 -topo fattree "SELECT ... "
//	rethink-sql -dist -pipeline-chunk 256 "SELECT ... "  # pipelined movement
//	rethink-sql -mem-budget 262144 -spill-tier ssd "SELECT ... "
//	rethink-sql -dist -concurrency 4                # demo queries, 4 parallel sessions
//	rethink-sql -dist -concurrency 4 -priority interactive -weight 3
//	rethink-sql -dist -sdn reroute+priority -concurrency 4
//	rethink-sql -dist -replication 2 -chaos 'kill:1@0:0.5' "SELECT ... "
//	rethink-sql -timeout 100ms "SELECT ... "        # context cancellation
//	rethink-sql -stream 20000 -stream-window 200    # continuous query demo
//	rethink-sql -dist -stream 20000 "SELECT k, COUNT(*) AS n FROM events GROUP BY k"
//	rethink-sql                                     # runs a demo query set
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/lifecycle"
	"repro/internal/memtier"
	"repro/internal/metrics"
	"repro/internal/relational"
	"repro/internal/sdn"
	"repro/internal/serve/wire"
	"repro/internal/sql"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rethink-sql: ")
	rows := flag.Int("rows", 20000, "sales fact rows")
	customers := flag.Int("customers", 500, "customer dimension rows")
	seed := flag.Uint64("seed", 42, "data generation seed")
	explain := flag.Bool("explain", false, "print the plan instead of executing")
	serial := flag.Bool("serial", false, "run on the row-at-a-time engine instead of the batch engine")
	workers := flag.Int("workers", 0, "batch engine workers per host (0 = NumCPU)")
	distMode := flag.Bool("dist", false, "execute shard-parallel over a simulated datacenter fabric")
	shards := flag.Int("shards", 4, "worker hosts in distributed mode")
	topology := flag.String("topo", "leafspine", "distributed fabric: leafspine, single, fattree, torus")
	distJoin := flag.String("dist-join", "auto", "distributed join movement: auto, broadcast, repartition")
	hashShard := flag.Bool("hash-shard", false, "hash-partition tables instead of range partitioning")
	pipelineChunk := flag.Int("pipeline-chunk", 0, "pipelined movement chunk size in rows; phases overlap compute with the next chunk's flows (0 = bulk phases)")
	concurrency := flag.Int("concurrency", 1, "parallel sessions executing the query list against the shared fabric")
	timeout := flag.Duration("timeout", 0, "per-query context timeout (0 = none)")
	priority := flag.String("priority", "", "QoS class for the first session (others stay best-effort); e.g. interactive, batch")
	weight := flag.Float64("weight", 0, "weighted-max-min scheduling weight for the first session (0 = uniform)")
	sdnPolicy := flag.String("sdn", "", "fabric controller policy: "+strings.Join(sdn.Policies, ", ")+" (empty = fixed data plane)")
	devices := flag.String("devices", "", "heterogeneous device set, comma-separated from "+strings.Join(exec.DeviceNames, ",")+" (empty = homogeneous CPU engine)")
	placement := flag.String("placement", "auto", "morsel placement policy over -devices: "+strings.Join(exec.Placements, ", "))
	memBudget := flag.Int64("mem-budget", 0, "operator-state memory budget in bytes; overflow spills to -spill-tier (0 = unbudgeted)")
	spillTier := flag.String("spill-tier", "", "spill tier for budget overflow: "+strings.Join(memtier.SpillTiers, ", ")+" (default ssd when budgeted)")
	jsonOut := flag.Bool("json", false, "emit each result as one canonical wire-format JSON document (the same encoding rethinkd serves) instead of tables")
	replication := flag.Int("replication", 0, "shard replica count (R>1 enables the elastic lifecycle layer; requires -dist)")
	chaos := flag.String("chaos", "", "fault schedule: kill:W@P[:FRAC],slow:W@R[:FACTOR],degrade:W@P[:FACTOR],partition:W@P,seed:N (requires -dist)")
	streamN := flag.Int("stream", 0, "streaming demo: feed this many synthetic events into a growing relation under a continuous query, printing each window as the watermark emits it (0 = off; the query argument, or a default per-key aggregate, is the continuous query)")
	streamWindow := flag.Int64("stream-window", 100, "window size in event-time ticks for -stream")
	streamSlide := flag.Int64("stream-slide", 0, "window slide in ticks for -stream (0 = tumbling)")
	streamLateness := flag.Int64("stream-lateness", 5, "event-time disorder to absorb before emitting, for -stream")
	flag.Parse()

	cfg := sql.DefaultConfig()
	cfg.Parallel = !*serial
	cfg.Workers = *workers
	cfg.Distributed = *distMode
	cfg.Shards = *shards
	cfg.Topology = *topology
	cfg.DistJoin = *distJoin
	cfg.ShardHash = *hashShard
	cfg.PipelineChunkRows = *pipelineChunk
	if *devices != "" {
		cfg.Devices = strings.Split(*devices, ",")
		cfg.Placement = *placement
	}
	cfg.MemoryBudget = *memBudget
	cfg.SpillTier = *spillTier
	cfg.Replication = *replication
	if *chaos != "" {
		plan, err := lifecycle.ParsePlan(*chaos, *shards)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	if *sdnPolicy != "" {
		pol := sdn.PolicyByName(*sdnPolicy)
		if pol == nil {
			log.Fatalf("unknown -sdn policy %q (have %s)", *sdnPolicy, strings.Join(sdn.Policies, ", "))
		}
		// The controller binds its topology view from the engine fabric's
		// first admission round.
		cfg.Controller = sdn.NewNetController(nil, pol, 4096)
	}
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sql.RegisterDemo(eng, *seed, *rows, *customers)

	if *streamN > 0 {
		q := ""
		if args := flag.Args(); len(args) > 0 {
			q = args[0]
		}
		if err := runStreamDemo(eng, q, *streamN, *streamWindow, *streamSlide, *streamLateness); err != nil {
			log.Fatal(err)
		}
		return
	}

	queries := flag.Args()
	if len(queries) == 0 {
		queries = []string{
			"SELECT region, COUNT(*) AS orders, SUM(price) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC",
			"SELECT c.segment, SUM(s.price * (1 - s.discount)) AS net FROM sales s JOIN customers c ON s.customer_id = c.customer_id GROUP BY c.segment ORDER BY net DESC",
			"SELECT product, MAX(price) AS top_price FROM sales WHERE year >= 2014 GROUP BY product ORDER BY top_price DESC LIMIT 5",
		}
	}

	if *explain {
		sess := eng.Session()
		for _, q := range queries {
			fmt.Printf("sql> %s\n", q)
			plan, err := sess.Explain(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(plan)
			fmt.Println()
		}
		return
	}

	if *concurrency <= 1 {
		sess := eng.Session()
		sess.Priority, sess.Weight = *priority, *weight
		for _, q := range queries {
			out, err := runOne(sess, q, *timeout, *jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Print(out)
		}
		return
	}

	// Concurrent mode: n sessions drain the query list in parallel. With
	// a distributed engine they share its one fabric; the admission
	// barrier guarantees the first wave of queries actually coexists.
	n := *concurrency
	if n > len(queries) {
		n = len(queries)
	}
	if fab := eng.Fabric(); fab != nil {
		fab.Expect(n)
	}
	work := make(chan string, len(queries))
	for _, q := range queries {
		work <- q
	}
	close(work)
	outputs := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := eng.Session()
			if i == 0 {
				// The flagged session: its peers stay best-effort, so the
				// per-query admission lines show the weighted session's net
				// time degrading less on the same fabric.
				sess.Priority, sess.Weight = *priority, *weight
			}
			var b strings.Builder
			// One idempotent release handle per session: if an error ever
			// grows a second release site (a cancellation hook, a retry
			// loop), the Expect slot still comes back exactly once.
			var slot *dist.Slot
			if fab := eng.Fabric(); fab != nil {
				slot = fab.Claim()
			}
			for q := range work {
				out, err := runOne(sess, q, *timeout, *jsonOut)
				if err != nil {
					errs[i] = err
					// This session dies before (or between) fabric
					// registrations; release its Expect slot so the
					// surviving sessions' admission barrier resolves.
					slot.Withdraw()
					return
				}
				b.WriteString(out)
			}
			outputs[i] = b.String()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, out := range outputs {
		fmt.Print(out)
	}
	if fab := eng.Fabric(); fab != nil {
		fmt.Printf("== aggregate contention (%d sessions) ==\n%s\n", n, fab.Stats().Summary())
	}
}

// runStreamDemo grows an events relation live under a continuous query:
// n synthetic events (keys k0..k9, mildly disordered event time, value
// = event index mod 17) stream in batches through the append path while
// the subscription prints each window the watermark emits. The closing
// flush drains the tail, then the stream report (events, late/dropped,
// freshness quantiles, spill) and — distributed — the fabric's
// ingest-class bytes close the run.
func runStreamDemo(eng *sql.Engine, query string, n int, size, slide, lateness int64) error {
	eng.Register(relational.NewRelation("events", relational.Schema{
		{Name: "k", Type: relational.String},
		{Name: "t", Type: relational.Int},
		{Name: "v", Type: relational.Int},
	}))
	if query == "" {
		query = "SELECT k, SUM(v) AS total, COUNT(*) AS events FROM events GROUP BY k"
	}
	sess := eng.Session()
	spec := stream.WindowSpec{TimeCol: "t", Size: size, Slide: slide, Lateness: lateness}
	sub, err := sess.Subscribe(context.Background(), query, spec)
	if err != nil {
		return err
	}
	src, err := sess.StreamSource("events")
	if err != nil {
		return err
	}
	effSlide := slide
	if effSlide == 0 {
		effSlide = size
	}
	fmt.Printf("stream> %s\n", query)
	fmt.Printf("  window size %d slide %d lateness %d over %d events\n\n", size, effSlide, lateness, n)

	feedErr := make(chan error, 1)
	go func() {
		defer src.Close()
		const batch = 256
		rows := make([]relational.Row, 0, batch)
		for i := 0; i < n; i++ {
			// Event time advances every other event and jitters backwards
			// within the lateness bound, so the watermark machinery has
			// disorder to absorb.
			t := int64(i/2) - int64(i%3)
			if t < 0 {
				t = 0
			}
			rows = append(rows, relational.Row{
				relational.StringV(fmt.Sprintf("k%d", i%10)),
				relational.IntV(t),
				relational.IntV(int64(i % 17)),
			})
			if len(rows) == batch || i == n-1 {
				if err := src.Append(rows...); err != nil {
					feedErr <- err
					return
				}
				rows = rows[:0]
			}
		}
		feedErr <- nil
	}()

	for win := range sub.Out() {
		fmt.Printf("window [%d, %d): %d events", win.Start, win.End, win.Events)
		if win.Late > 0 {
			fmt.Printf(" (%d late)", win.Late)
		}
		fmt.Printf(", %d groups\n", win.Rows.Len())
		fmt.Print(renderRelation(win.Rows))
	}
	if err := <-feedErr; err != nil {
		return err
	}
	if err := sub.Err(); err != nil {
		return err
	}
	st := sub.Stats()
	fmt.Printf("\nstream report: %d events (%d filtered, %d late, %d dropped), %d windows\n",
		st.Events, st.Filtered, st.Late, st.Dropped, st.Windows)
	fmt.Printf("  freshness: p50 %.2fms p95 %.2fms max %.2fms\n",
		st.FreshnessP50*1e3, st.FreshnessP95*1e3, st.FreshnessMax*1e3)
	if st.Spill != nil && st.Spill.Active() {
		fmt.Printf("  %s\n", st.Spill)
	}
	ist := src.Stats()
	fmt.Printf("  ingest: %d batches, %s", ist.Batches, metrics.FormatBytes(ist.Bytes))
	if ist.NetSeconds > 0 {
		fmt.Printf(", %s modeled fabric time", metrics.FormatSeconds(ist.NetSeconds))
	}
	fmt.Println()
	if fab := eng.Fabric(); fab != nil {
		fmt.Printf("  fabric ingest-class bytes: %s\n", metrics.FormatBytes(fab.Stats().ClassBytes[sql.IngestClass]))
	}
	return nil
}

// runOne executes one query on the session and renders its result block
// — human-readable tables, or (jsonOut) the canonical wire encoding
// shared with the rethinkd daemon and the rethink-load reports.
func runOne(sess *sql.Session, q string, timeout time.Duration, jsonOut bool) (string, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := sess.Query(ctx, q)
	if err != nil {
		return "", fmt.Errorf("%s: %w", q, err)
	}
	if jsonOut {
		doc := struct {
			SQL string `json:"sql"`
			*wire.Result
		}{SQL: q, Result: wire.FromResult(res)}
		data, err := json.Marshal(doc)
		if err != nil {
			return "", err
		}
		return string(data) + "\n", nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sql> %s\n", q)
	b.WriteString(renderRelation(res.Rows))
	if res.Devices != nil {
		fmt.Fprintf(&b, "  placement %s over %d device(s):\n", res.Placement, len(res.Devices))
		for _, d := range res.Devices {
			fmt.Fprintf(&b, "    %s\n", d)
		}
	}
	if res.Spill != nil {
		if res.Spill.Active() {
			fmt.Fprintf(&b, "  %s\n", res.Spill)
		} else {
			fmt.Fprintf(&b, "  spill: none (state fit the budget)\n")
		}
	}
	if res.Net != nil {
		b.WriteString(res.Net.Summary())
		b.WriteByte('\n')
		fmt.Fprintf(&b, "  (%s over the fabric in %s)\n",
			metrics.FormatBytes(res.Net.BytesShuffled), metrics.FormatSeconds(res.Net.NetSeconds))
	}
	b.WriteByte('\n')
	return b.String(), nil
}

func renderRelation(rel *relational.Relation) string {
	headers := make([]string, len(rel.Schema))
	for i, c := range rel.Schema {
		headers[i] = c.Name
	}
	t := metrics.NewTable(fmt.Sprintf("%d rows", rel.Len()), headers...)
	for _, row := range rel.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.AddRow(cells...)
	}
	return t.Render()
}
