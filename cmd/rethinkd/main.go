// Command rethinkd is the long-lived multi-tenant serving daemon: one
// shared sql.Engine behind an HTTP/JSON wire surface. Tenants
// authenticate with API keys and their configured QoS (fabric
// class/weight), worker and memory-budget defaults apply to every query
// they submit, so a weight-3 tenant demonstrably gets three times the
// fabric share of a weight-1 tenant under contention.
//
// Endpoints (all JSON):
//
//	POST /v1/sql     {"sql": "...", "prepare": true}   run a statement
//	POST /v1/tables  {"name", "schema", "rows"}        register a relation
//	POST /v1/gang    {"announce": n} / {"withdraw": n} wave barrier
//	POST /v1/hosts   {"action": "drain|restore|join"}  elastic membership
//	GET  /metrics                                      fabric + cache + tenant + cluster counters
//	GET  /healthz                                      liveness (503 while draining)
//	POST /drain                                        graceful shutdown
//
// Prepared statements ("prepare": true) are cached server-side per
// (tenant, statement, session-config) and invalidated whenever the
// catalog epoch moves (any Register), so a cached plan can never
// outlive the relation it was planned against. Client disconnects
// cancel the running query through the engine's cancellation path.
// SIGINT/SIGTERM drain gracefully: in-flight queries finish, new ones
// get 503, unfilled gang slots are withdrawn from the admission
// barrier.
//
// Usage:
//
//	rethinkd -addr :8343                       # demo data, gold/bronze tenants
//	rethinkd -addr :8343 -tenants tenants.json # custom tenant set
//	rethinkd -shards 8 -topo fattree -rows 200000
//	rethinkd -sdn reroute+priority -pipeline-chunk 4096
//	rethinkd -replication 2 -chaos 'kill:1@0:0.5'      # chaos serving
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/sdn"
	"repro/internal/serve"
	"repro/internal/sql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rethinkd: ")
	addr := flag.String("addr", ":8343", "listen address")
	tenantsFile := flag.String("tenants", "", "tenant config JSON (array of {name, api_key, priority, weight, ...}); empty = gold(3x,interactive)/bronze(1x) demo tenants")
	cacheCap := flag.Int("plan-cache", serve.DefaultCacheCap, "prepared-statement cache capacity (entries)")
	rows := flag.Int("rows", 20000, "demo sales fact rows (0 = start with an empty catalog)")
	customers := flag.Int("customers", 500, "demo customer dimension rows")
	seed := flag.Uint64("seed", 42, "demo data generation seed")
	serial := flag.Bool("serial", false, "run on the row-at-a-time engine instead of the batch engine")
	workers := flag.Int("workers", 0, "batch engine workers per host (0 = NumCPU)")
	distMode := flag.Bool("dist", true, "execute shard-parallel over a simulated datacenter fabric (the serving default: tenant QoS needs a fabric to matter)")
	shards := flag.Int("shards", 4, "worker hosts in distributed mode")
	topology := flag.String("topo", "leafspine", "distributed fabric: leafspine, single, fattree, torus")
	distJoin := flag.String("dist-join", "auto", "distributed join movement: auto, broadcast, repartition")
	hashShard := flag.Bool("hash-shard", false, "hash-partition tables instead of range partitioning")
	pipelineChunk := flag.Int("pipeline-chunk", 0, "pipelined movement chunk size in rows (0 = bulk phases)")
	sdnPolicy := flag.String("sdn", "", "fabric controller policy: "+strings.Join(sdn.Policies, ", ")+" (empty = fixed data plane)")
	memBudget := flag.Int64("mem-budget", 0, "engine-default operator-state memory budget in bytes (tenants may tighten)")
	spillTier := flag.String("spill-tier", "", "spill tier for budget overflow (default ssd when budgeted)")
	replication := flag.Int("replication", 0, "shard replica count (R>1 enables the elastic lifecycle layer: /v1/hosts, read-side failover)")
	chaos := flag.String("chaos", "", "fault schedule: kill:W@P[:FRAC],slow:W@R[:FACTOR],degrade:W@P[:FACTOR],partition:W@P,seed:N")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	flag.Parse()

	cfg := sql.DefaultConfig()
	cfg.Parallel = !*serial
	cfg.Workers = *workers
	cfg.Distributed = *distMode
	cfg.Shards = *shards
	cfg.Topology = *topology
	cfg.DistJoin = *distJoin
	cfg.ShardHash = *hashShard
	cfg.PipelineChunkRows = *pipelineChunk
	cfg.MemoryBudget = *memBudget
	cfg.SpillTier = *spillTier
	cfg.Replication = *replication
	if *chaos != "" {
		plan, err := lifecycle.ParsePlan(*chaos, *shards)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	if *sdnPolicy != "" {
		pol := sdn.PolicyByName(*sdnPolicy)
		if pol == nil {
			log.Fatalf("unknown -sdn policy %q (have %s)", *sdnPolicy, strings.Join(sdn.Policies, ", "))
		}
		cfg.Controller = sdn.NewNetController(nil, pol, 4096)
	}
	eng, err := sql.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *rows > 0 {
		sql.RegisterDemo(eng, *seed, *rows, *customers)
	}

	tenants := serve.DefaultTenants()
	if *tenantsFile != "" {
		data, err := os.ReadFile(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		if tenants, err = serve.ParseTenants(data); err != nil {
			log.Fatal(err)
		}
	}
	srv := serve.New(eng, tenants, serve.Options{CacheCap: *cacheCap})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()

	fmt.Printf("rethinkd: serving on %s (%d tenants", *addr, len(tenants.List()))
	for _, t := range tenants.List() {
		w := t.Weight
		if w <= 0 {
			w = 1
		}
		fmt.Printf("; %s weight %g", t.Name, w)
	}
	fmt.Printf(")\n")
	if *rows > 0 {
		fmt.Printf("rethinkd: demo catalog loaded: sales(%d rows), customers(%d rows)\n", *rows, *customers)
	}
	if lcm := eng.Lifecycle(); lcm != nil {
		h := lcm.Health()
		fmt.Printf("rethinkd: elastic lifecycle on: replication %d, %d workers (%d spare hosts), %d scheduled faults\n",
			h.Replication, h.Workers, h.Spares, h.EventsTotal)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatal(err)
	case s := <-sig:
		fmt.Printf("rethinkd: %v — draining (in-flight queries finish, new ones get 503)\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			log.Printf("drain: %v", err)
		}
		_ = httpSrv.Shutdown(ctx)
		fmt.Println("rethinkd: drained, bye")
	}
}
