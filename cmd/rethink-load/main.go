// Command rethink-load is the serving load harness: it drives thousands
// of concurrent sessions across multiple tenants against a rethinkd
// daemon (or an in-process engine) and reports per-tenant p50/p95/p99
// latency, throughput, and net/spill/overlap breakdowns — human-readable
// on stdout and machine-readable with -json (the CI artifact format).
//
// Two latency distributions are reported per tenant: wall (client-
// observed request time) and model (the simulated fabric wall time plus
// spill I/O the server measured for the query). Tenant fabric weights
// show up in the model distribution — a weight-3 tenant's flows get 3x
// the bandwidth share of a weight-1 peer on shared bottlenecks, so its
// model p95 sits measurably lower under the same contention.
//
// With -gang the first wave of sessions is announced on the fabric's
// admission barrier, so all of them verifiably coexist in one round
// (PeakParties in the report equals the session count) instead of
// depending on goroutine timing.
//
// With -stream N the harness switches to streaming mode: it registers
// a fresh events relation, opens a continuous-query subscription on
// /v1/stream, pumps N events through the ingest path while windows
// emit live, closes the stream, and reports ingest throughput (events
// per second, batch count, modeled ingest-class fabric time) plus the
// subscription's window-freshness quantiles.
//
// Usage:
//
//	rethink-load -addr http://127.0.0.1:8343 -sessions 1000 -gang
//	rethink-load -inproc -sessions 1000 -queries-per 2 -json report.json
//	rethink-load -inproc -sessions 200 -shares gold=3,bronze=1 -verify
//	rethink-load -addr http://127.0.0.1:8343 -stream 200000 -json BENCH.json
//	rethink-load -inproc -stream 100000 -stream-window 2000 -stream-slide 500
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/serve"
	"repro/internal/sql"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rethink-load: ")
	addr := flag.String("addr", "", "target daemon base URL (e.g. http://127.0.0.1:8343); empty requires -inproc")
	inproc := flag.Bool("inproc", false, "boot a server in-process and drive it without sockets")
	sessions := flag.Int("sessions", 1000, "concurrent sessions")
	queriesPer := flag.Int("queries-per", 1, "statements per session")
	prepare := flag.Bool("prepare", true, "route statements through the server's prepared-statement cache")
	gang := flag.Bool("gang", false, "announce the first wave on the admission barrier (deterministic contention)")
	shares := flag.String("shares", "gold=1,bronze=1", "tenant session shares, name=share comma-separated (tenants must exist server-side)")
	keys := flag.String("keys", "gold=gold-key,bronze=bronze-key", "tenant API keys, name=key comma-separated")
	jsonOut := flag.String("json", "", "write the machine-readable report to this file")
	verify := flag.Bool("verify", false, "replay every distinct statement on a reference engine and compare rows (in-proc, or remote daemons started with the same -rows/-customers/-seed)")
	query := flag.String("query", "", "single statement to drive (empty = the default 3-statement mix)")
	streamN := flag.Int("stream", 0, "streaming mode: ingest this many events through /v1/stream under a live continuous-query subscription and report ingest throughput + window freshness (0 = query load)")
	streamBatch := flag.Int("stream-batch", 500, "events per ingest request in -stream mode")
	streamKeys := flag.Int("stream-keys", 50, "group-key cardinality in -stream mode")
	streamWindow := flag.Int64("stream-window", 1000, "window size in event-time ticks in -stream mode")
	streamSlide := flag.Int64("stream-slide", 250, "window slide in ticks in -stream mode (0 = tumbling)")
	// In-proc / verify reference engine knobs (match the daemon's flags).
	rows := flag.Int("rows", 20000, "demo sales rows for -inproc / -verify reference")
	customers := flag.Int("customers", 500, "demo customers for -inproc / -verify reference")
	seed := flag.Uint64("seed", 42, "demo seed for -inproc / -verify reference")
	shards := flag.Int("shards", 4, "worker hosts for the -inproc engine")
	topology := flag.String("topo", "leafspine", "fabric for the -inproc engine")
	pipelineChunk := flag.Int("pipeline-chunk", 0, "pipelined chunk size for the -inproc engine")
	flag.Parse()

	refEngine := func() *sql.Engine {
		cfg := sql.DefaultConfig()
		cfg.Distributed = true
		cfg.Shards = *shards
		cfg.Topology = *topology
		cfg.PipelineChunkRows = *pipelineChunk
		eng, err := sql.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sql.RegisterDemo(eng, *seed, *rows, *customers)
		return eng
	}

	if *streamN > 0 {
		sc := serve.StreamLoadConfig{
			Events: *streamN,
			Batch:  *streamBatch,
			Keys:   *streamKeys,
			Window: serve.WindowRequest{TimeCol: "t", Size: *streamWindow, Slide: *streamSlide},
		}
		if *inproc {
			sc.Handler = serve.New(refEngine(), serve.DefaultTenants(), serve.Options{}).Handler()
		} else if *addr != "" {
			sc.BaseURL = *addr
		} else {
			log.Fatal("need -addr or -inproc")
		}
		report, err := serve.RunStreamLoad(context.Background(), sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.Summary())
		if *jsonOut != "" {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("report: %s\n", *jsonOut)
		}
		return
	}

	lc := serve.LoadConfig{
		Sessions:          *sessions,
		QueriesPerSession: *queriesPer,
		Prepare:           *prepare,
		Gang:              *gang,
		Tenants:           parseTenants(*shares, *keys),
	}
	if *query != "" {
		lc.Queries = []string{*query}
	}
	if *inproc {
		srv := serve.New(refEngine(), serve.DefaultTenants(), serve.Options{})
		lc.Handler = srv.Handler()
	} else if *addr != "" {
		lc.BaseURL = *addr
	} else {
		log.Fatal("need -addr or -inproc")
	}

	report, err := serve.RunLoad(context.Background(), lc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Summary())
	if report.TotalErrors > 0 {
		log.Fatalf("%d queries failed", report.TotalErrors)
	}
	if *verify {
		if err := serve.VerifyAgainstEngine(report, refEngine()); err != nil {
			log.Fatal(err)
		}
		fmt.Println("verify: served rows identical to direct library execution")
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report: %s\n", *jsonOut)
	}
}

// parseTenants merges the -shares and -keys flags into the load tenant
// mix.
func parseTenants(shares, keys string) []serve.LoadTenant {
	keyOf := map[string]string{}
	for _, kv := range strings.Split(keys, ",") {
		name, key, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || name == "" || key == "" {
			log.Fatalf("bad -keys entry %q (want name=key)", kv)
		}
		keyOf[name] = key
	}
	var out []serve.LoadTenant
	for _, kv := range strings.Split(shares, ",") {
		name, shareStr, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || name == "" {
			log.Fatalf("bad -shares entry %q (want name=share)", kv)
		}
		share, err := strconv.Atoi(shareStr)
		if err != nil || share <= 0 {
			log.Fatalf("bad share for tenant %s: %q", name, shareStr)
		}
		key, ok := keyOf[name]
		if !ok {
			log.Fatalf("tenant %s has a share but no -keys entry", name)
		}
		out = append(out, serve.LoadTenant{Name: name, APIKey: key, Share: share})
	}
	if len(out) == 0 {
		log.Fatal("no tenants in -shares")
	}
	return out
}
