// Command rethink-bench runs the reproduction's experiment harnesses —
// the paper's Table 1 and Figure 1 plus experiments E1–E16 and the
// DESIGN.md ablations — and prints each report. EXPERIMENTS.md is
// generated from this tool's output.
//
// Usage:
//
//	rethink-bench            # run everything
//	rethink-bench -only E7   # one experiment
//	rethink-bench -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by ID (e.g. E7)")
	list := flag.Bool("list", false, "list experiment IDs and titles")
	flag.Parse()

	reports := experiments.All()
	if *list {
		for _, r := range reports {
			fmt.Printf("%-12s %s\n", r.ID, r.Title)
		}
		return
	}
	matched := false
	for _, r := range reports {
		if *only != "" && !strings.EqualFold(r.ID, *only) {
			continue
		}
		matched = true
		fmt.Println(r.Render())
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "rethink-bench: no experiment %q (try -list)\n", *only)
		os.Exit(2)
	}
}
